//! The network: routers, links, injectors and receivers, advanced one
//! cycle at a time, with the CR/FCR kill machinery on top.
//!
//! # Cycle phases
//!
//! 1. **Arrivals** — flits finish their link traversal: fault
//!    injection, killed-worm filtering, FCR corruption detection, then
//!    acceptance into the downstream input VC.
//! 2. **Kill tokens** — forward teardown tokens walk one hop toward
//!    the destination, backward tokens one hop toward the source, each
//!    flushing buffers, releasing channels and restoring credits.
//! 3. **Path-wide detection** (optional) — routers kill locally
//!    stalled worms (the paper's inferior alternative to source
//!    timeouts).
//! 4. **Traffic generation** — Bernoulli sources enqueue messages.
//! 5. **Injection** — injectors push flits, watch stalls, and request
//!    source-timeout kills.
//! 6. **Routing/allocation** then **switch traversal** for every
//!    router; departing flits enter link pipelines or receivers, and
//!    credits return upstream.
//! 7. Bookkeeping: registry pruning and the deadlock watchdog.
//!
//! # Active-set scheduling
//!
//! By default the stepper is *sparse*: each phase walks only the
//! components that can possibly do work this cycle, tracked in
//! generation-stamped [`ActiveSet`]s (links with buffered flits,
//! routers with occupancy or an open stall streak, injectors with a
//! worm in hand or a queue), and the run loops *fast-forward* across
//! stretches of cycles in which every phase is provably a no-op. The
//! results are byte-identical to the dense reference stepper (every
//! phase visits the active components in the same ascending order the
//! dense sweep uses, and skipped components/cycles are proven
//! side-effect-free — see DESIGN.md §10); the dense sweep stays
//! reachable via [`Network::set_reference_stepper`].

use crate::config::NetworkConfig;
use crate::injector::{Injector, PendingMessage};
use crate::killmap::KilledMap;
use crate::receiver::Receiver;
use crate::report::{ChurnEventReport, ChurnSummary, NetCounters, SimReport, TraceSummary};
use cr_faults::{ChurnFiring, FaultModel};
use cr_metrics::{LatencyRecorder, ThroughputMeter};
use cr_router::{
    Flit, LinkStallStreak, LinkStats, PortKind, RouteTarget, Router, RouterConfig,
    RoutingFunction, Traversal, WormId,
};
use cr_sim::sched::ActiveSet;
use cr_sim::shard::Sharded;
use cr_sim::trace::{Event, KillCause, TraceSink, TraceStats};
use cr_sim::{Cycle, MessageId, NodeId, PortId, SimRng, VcId};
use cr_topology::Topology;
use cr_traffic::TrafficSource;
use std::collections::VecDeque;
use std::sync::Arc;

#[path = "network_sharded.rs"]
mod sharded;

#[path = "check_api.rs"]
pub mod check_api;

/// Checked narrowing of a dense table index or length to the `u32`
/// the packed encodings and active-set members use.
pub(crate) fn idx32(i: usize) -> u32 {
    // cr-lint: allow(panic-discipline, reason = "dense indices and lengths sit far below u32::MAX by construction; wrapping silently would corrupt state")
    u32::try_from(i).expect("index exceeds u32::MAX")
}

#[derive(Debug)]
struct LinkState {
    /// Flits in flight or parked in the channel's stall-holding
    /// latches, one lane per virtual channel so a blocked VC never
    /// blocks the others: (arrival cycle, flit).
    lanes: Vec<VecDeque<(Cycle, Flit)>>,
    /// Total flits across all lanes, so the per-cycle arrival scan can
    /// skip idle links without touching their lane deques.
    occupied: usize,
}

#[derive(Debug, Clone, Copy)]
struct Token {
    worm: WormId,
    node: usize,
    port: PortId,
    vc: VcId,
}

/// Sentinel in `worm_sources` for delivered messages.
const SOURCE_GONE: u32 = u32::MAX;

/// Per-fired-churn-event drain bookkeeping: which in-flight messages
/// the event touched, and when the last of them left the network.
#[derive(Debug)]
struct ChurnTracker {
    /// Cycle the event actually applied (always == the scheduled
    /// cycle; fast-forward treats pending churn as a wake source).
    at: Cycle,
    kind: &'static str,
    subject: u64,
    links_killed: u64,
    links_revived: u64,
    /// Messages in flight on the affected links when the event fired;
    /// entries are retired as they deliver (`worm_sources` goes to
    /// [`SOURCE_GONE`]).
    affected: Vec<MessageId>,
    /// `affected.len()` at fire time (the report field; `affected`
    /// itself shrinks as messages drain).
    affected_total: u64,
    drained_at: Option<Cycle>,
}

/// A complete simulated network. Build one with
/// [`NetworkBuilder`](crate::NetworkBuilder).
pub struct Network {
    // Shared read-only tables (and the serially-mutated killed/faults
    // registries) sit behind `Arc` so the sharded stepper can hand
    // clones to the persistent worker team's 'static tasks. The
    // mutable registries are only written through `killed_mut` /
    // `faults_mut`, which assert the task clones are gone.
    topo: Arc<dyn Topology>,
    cfg: NetworkConfig,
    routing: Arc<dyn RoutingFunction>,
    faults: Arc<FaultModel>,
    timeout: u64,

    // Per-component mutable state is stored in per-shard chunks
    // ([`Sharded`]) so a shard task can take its chunk by value, work
    // on it on a team worker, and hand it back — no borrows cross the
    // thread boundary. Indexing is flat (single-chunk fast path keeps
    // the serial steppers unchanged).
    routers: Sharded<Router>,
    injectors: Sharded<Vec<Injector>>,
    receivers: Sharded<Receiver>,
    sources: Vec<TrafficSource>,

    links: Sharded<LinkState>,
    /// `out_link[node][port]` = link index leaving that port.
    out_link: Arc<Vec<Vec<Option<usize>>>>,
    /// `link_head[link]` = (dst node, dst input port).
    link_head: Arc<Vec<(usize, PortId)>>,
    /// `link_ids[link]` = the topology's `LinkId` (fault-model key).
    link_ids: Arc<Vec<cr_sim::LinkId>>,
    /// Inverse of `link_ids`: `link_by_id[id.index()]` = original link
    /// index (`u32::MAX` for ids the topology never handed out).
    link_by_id: Vec<u32>,
    /// `in_upstream[node][in_port]` = (upstream node, upstream output
    /// port).
    in_upstream: Arc<Vec<Vec<Option<(usize, PortId)>>>>,

    /// Post-warmup flits carried per link (channel-utilization
    /// statistics).
    link_flits: Vec<u64>,
    killed: Arc<KilledMap>,
    registry_lifetime: u64,
    fwd_tokens: Vec<Token>,
    bwd_tokens: Vec<Token>,
    /// Token double-buffers: `step_tokens_once` swaps the live lists
    /// into these so re-pushed continuation tokens reuse capacity
    /// instead of reallocating every teardown step.
    fwd_scratch: Vec<Token>,
    bwd_scratch: Vec<Token>,
    /// `worm_sources[message]` = `src * inject_channels + channel`,
    /// indexed by the dense monotonic [`MessageId`];
    /// [`SOURCE_GONE`] once the message is delivered.
    worm_sources: Vec<u32>,
    /// Future trace events, time-sorted (front = next due).
    scheduled: VecDeque<cr_traffic::TraceEvent>,
    /// `seq_counters[src * n + dst]` = next per-flow sequence number.
    seq_counters: Vec<u64>,
    next_message_id: u64,
    /// Per-cycle switch-traversal output, reused across cycles.
    traversal_scratch: Vec<Traversal>,
    /// Per-cycle path-wide stall list, reused across cycles.
    stall_scratch: Vec<(PortId, VcId, WormId)>,
    /// Per-cycle finished-stall-streak list, reused across cycles
    /// (only touched while tracing).
    streak_scratch: Vec<LinkStallStreak>,
    /// Structured protocol-event sink ([`cr_sim::trace`]); the
    /// disabled variant unless the builder enables tracing.
    trace: TraceSink,

    now: Cycle,
    record_deliveries: bool,
    delivery_log: Vec<crate::receiver::DeliveredMessage>,
    latency: LatencyRecorder,
    throughput: ThroughputMeter,
    counters: NetCounters,
    last_progress: Cycle,
    deadlocked: bool,
    offered_load: f64,
    fault_rng: SimRng,

    // --- active-set scheduler state (DESIGN.md §10) ---
    //
    // The sets are maintained by the shared mutation helpers whichever
    // stepper is running, so they are always a superset of the truly
    // active components; only the active phases drain them and drop
    // the stale members. That keeps a dense->active switch mid-run
    // legal.
    /// Routers with buffered flits or an open stall streak, one set
    /// per shard (global node ids; shard ownership is fixed by
    /// `node_shard`). With one shard this is the PR-5 scheduler state
    /// unchanged; concatenating the per-shard sorted drains in shard
    /// order reproduces the global ascending order because shards own
    /// contiguous node-id ranges.
    router_sets: Vec<ActiveSet>,
    /// Links with flits in flight or parked in the channel latches,
    /// one set per shard, keyed by *permuted* link index (see
    /// `link_perm`).
    link_sets: Vec<ActiveSet>,
    /// Injectors (flat id `node * inject_channels + channel`) with a
    /// worm in hand or queued messages, one set per shard.
    injector_sets: Vec<ActiveSet>,
    /// `link_wake[link]` = earliest front-of-lane arrival estimate.
    /// Min-updated on every push; may go stale-*early* after purges
    /// (harmless: the link is rescanned and the wake recomputed) but
    /// never stale-late, because pops only raise the true minimum.
    link_wake: Sharded<Cycle>,
    /// Drained-set scratch shared by the active phases (sequential).
    ids_scratch: Vec<u32>,
    /// Flits in routers + links, maintained incrementally; the O(1)
    /// backing of [`Network::flits_in_flight`].
    live_flits: usize,
    /// Injectors with queued, in-flight, or vulnerable messages —
    /// the O(1) backing of the quiescence check.
    undrained_injectors: usize,
    /// `true` = run the dense reference stepper (every phase sweeps
    /// every component, no fast-forward).
    reference_stepper: bool,
    /// `true` = take the sharded stepper even for a single-shard plan
    /// (equivalence tests use this to drive the persistent team and
    /// its barriers at `shards = 1`).
    force_sharded: bool,

    // --- spatial sharding state (DESIGN.md §12) ---
    /// Contiguous node-id partition of the fabric; serial (one shard)
    /// unless the builder asked for more.
    plan: cr_sim::shard::Plan,
    /// `node_shard[node]` = owning shard (the plan's owner table).
    node_shard: Vec<u16>,
    /// `link_perm[orig li]` = permuted index. Link *state* (`links`,
    /// `link_wake`) is stored grouped by owning shard (the shard of
    /// the link's **destination** node, which is the side arrivals
    /// mutate), ascending original index within each shard, so each
    /// shard's links form one contiguous slice. Identity when serial.
    link_perm: Vec<u32>,
    /// Inverse of `link_perm`: permuted index -> original link index.
    link_orig: Arc<Vec<u32>>,
    /// Permuted-index range of shard `s`: `link_bounds[s] ..
    /// link_bounds[s + 1]`.
    link_bounds: Vec<usize>,
    /// `link_shard[permuted]` = owning shard.
    link_shard: Vec<u16>,
    /// Per-shard mutation buffers for the parallel phases, drained at
    /// each phase barrier in shard order.
    shard_scratch: Vec<sharded::ShardScratch>,
    /// Switch-traversal credit returns resolved to (upstream node,
    /// upstream output port, vc), buffered during the traverse
    /// sub-stage and applied at its end — one cycle of credit-return
    /// latency, identical in the serial and sharded steppers.
    credit_scratch: Vec<(u32, PortId, VcId)>,
    /// Worker-thread override for the sharded stepper (tests force >1
    /// on single-core machines); `None` = available parallelism.
    shard_threads: Option<usize>,
    /// Persistent worker team for the sharded stepper, spawned lazily
    /// at the first sharded step and reused for every fan-out
    /// thereafter (DESIGN.md §12). `None` until then, and reset by
    /// [`Network::set_shard_threads`]. Shut down (workers joined)
    /// ahead of the shard state by [`Network`]'s `Drop`.
    team: Option<cr_sim::pool::Team>,
    /// `true` once any link has ever been dead during a step. Under a
    /// fault-detecting protocol with a nonzero detection-miss rate, a
    /// corrupted flit may have survived its dead-link arrival and
    /// still be roaming, so the per-cycle parallel-arrivals gate must
    /// stay conservative forever after (DESIGN.md §12).
    ever_dead: bool,

    // --- live fault churn state (DESIGN.md §13) ---
    /// Scratch for [`cr_faults::FaultModel::apply_churn_due`], reused
    /// across cycles.
    churn_firings: Vec<ChurnFiring>,
    /// One tracker per fired churn event, in firing order (the
    /// report's `churn.events` rows).
    churn_trackers: Vec<ChurnTracker>,
    /// Trackers still waiting on affected messages to deliver — the
    /// O(1) gate on the per-cycle drain check.
    churn_undrained: usize,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("topology", &self.topo.label())
            .field("routing", &self.routing.name())
            .field("protocol", &self.cfg.protocol)
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Assembles a network. Prefer
    /// [`NetworkBuilder`](crate::NetworkBuilder), which fills in the
    /// routing function and traffic sources consistently.
    pub(crate) fn assemble(
        topo: Box<dyn Topology>,
        cfg: NetworkConfig,
        routing: Box<dyn RoutingFunction>,
        mut faults: FaultModel,
        sources: Vec<TrafficSource>,
        offered_load: f64,
        shards: usize,
    ) -> Self {
        cfg.validate();
        let topo: Arc<dyn Topology> = Arc::from(topo);
        let routing: Arc<dyn RoutingFunction> = Arc::from(routing);
        let n = topo.num_nodes();
        let plan = cr_sim::shard::Plan::from_hint(topo.partition_hint(shards), n, shards);
        let node_shard = plan.owner_table();
        let num_shards = plan.num_shards();
        let root = SimRng::from_seed(cfg.seed);
        let num_vcs = routing.num_vcs();

        let mut routers = Vec::with_capacity(n);
        for i in 0..n {
            let node = NodeId::from_index(i);
            let rc = RouterConfig {
                num_node_ports: topo.num_ports(node),
                num_vcs,
                buffer_depth: cfg.buffer_depth,
                num_inject: cfg.inject_channels,
                inject_depth: cfg.inject_depth,
                num_eject: cfg.eject_channels,
                link_depth: cfg.channel_latency as usize,
            };
            routers.push(Router::new(node, rc, root.split(1_000 + i as u64)));
        }

        // The paper's default timeout: message length x number of VCs.
        // Without traffic we fall back to a generous constant.
        let timeout = cfg.timeout.unwrap_or(32 * num_vcs as u64);
        // Under the path-wide scheme, stall detection lives in the
        // routers *instead of* the source: the injector never times
        // out on its own (its injection FIFO is still watched by the
        // path-wide detector, which covers the source case too).
        let injector_timeout = if cfg.path_wide_threshold.is_some() {
            u64::MAX
        } else {
            timeout
        };

        let mut injectors: Vec<Vec<Injector>> = Vec::with_capacity(n);
        for i in 0..n {
            let node = NodeId::from_index(i);
            injectors.push(
                (0..cfg.inject_channels)
                    .map(|c| {
                        Injector::new(
                            node,
                            c,
                            cfg.protocol,
                            injector_timeout,
                            cfg.retransmit,
                            root.split(2_000_000 + (i * 64 + c) as u64),
                        )
                    })
                    .collect(),
            );
        }
        for chans in injectors.iter_mut() {
            for inj in chans.iter_mut() {
                inj.set_ablations(cfg.ablations);
            }
        }
        let receivers: Vec<Receiver> =
            (0..n).map(|i| Receiver::new(NodeId::from_index(i))).collect();

        // Link tables.
        let descs = topo.links();
        let mut links = Vec::with_capacity(descs.len());
        let mut out_link: Vec<Vec<Option<usize>>> = (0..n)
            .map(|i| vec![None; topo.num_ports(NodeId::from_index(i))])
            .collect();
        let mut link_head = Vec::with_capacity(descs.len());
        let mut link_ids = Vec::with_capacity(descs.len());
        let mut in_upstream: Vec<Vec<Option<(usize, PortId)>>> = (0..n)
            .map(|i| vec![None; topo.num_ports(NodeId::from_index(i))])
            .collect();
        for (idx, d) in descs.iter().enumerate() {
            links.push(LinkState {
                lanes: (0..num_vcs).map(|_| VecDeque::new()).collect(),
                occupied: 0,
            });
            out_link[d.src.index()][d.src_port.index()] = Some(idx);
            link_head.push((d.dst.index(), d.dst_port));
            link_ids.push(d.id);
            in_upstream[d.dst.index()][d.dst_port.index()] = Some((d.src.index(), d.src_port));
        }

        // Group link *state* storage by owning shard (the shard of the
        // destination node), ascending original index within a shard,
        // so each shard's links are one contiguous mutable slice. With
        // one shard the permutation is the identity.
        let mut link_bounds = vec![0usize; num_shards + 1];
        for d in &descs {
            link_bounds[node_shard[d.dst.index()] as usize + 1] += 1;
        }
        for s in 0..num_shards {
            link_bounds[s + 1] += link_bounds[s];
        }
        let mut next = link_bounds.clone();
        let mut link_perm = vec![0u32; descs.len()];
        let mut link_orig = vec![0u32; descs.len()];
        let mut link_shard = vec![0u16; descs.len()];
        for (idx, d) in descs.iter().enumerate() {
            let s = node_shard[d.dst.index()] as usize;
            let pi = next[s];
            next[s] += 1;
            link_perm[idx] = idx32(pi);
            link_orig[pi] = idx32(idx);
            // cr-lint: allow(integer-narrowing, reason = "s indexes node_shard, whose entries are already u16 shard numbers")
            link_shard[pi] = s as u16;
        }

        // `LinkId` -> original link index, for resolving churn firings
        // back to link state.
        let max_id = descs.iter().map(|d| d.id.index() + 1).max().unwrap_or(0);
        let mut link_by_id = vec![u32::MAX; max_id];
        for (idx, d) in descs.iter().enumerate() {
            link_by_id[d.id.index()] = idx32(idx);
        }

        // Regional outages expand to concrete kill/revive pairs once,
        // against this topology, so the per-cycle churn check is a
        // plain cursor compare.
        faults.expand_churn(&*topo);

        // Routers learn their dead outgoing links up front (the
        // diagnosed-fault model; undiagnosed behaviour still works via
        // corruption detection, this just lets adaptivity avoid them).
        // Churn events update these flags live as they fire — the
        // marking is state, not a construction-time-only decision.
        for d in &descs {
            if faults.is_dead(d.id) {
                routers[d.src.index()].set_dead_out(d.src_port);
            }
        }

        let misroute = cfg.routing.misroute_budget() as usize;
        let registry_lifetime =
            4 * (topo.diameter() + misroute) as u64 + cfg.channel_latency + 64;

        let trace = match cfg.trace_capacity {
            Some(capacity) => TraceSink::ring(capacity),
            None => TraceSink::Disabled,
        };
        if trace.enabled() {
            // Finished link-stall streaks become `LinkStall` events;
            // with tracing off they are discarded at the router.
            for r in routers.iter_mut() {
                r.set_record_streaks(true);
            }
        }

        // Per-shard chunk sizes for the owned-state stores: nodes by
        // the plan's contiguous ranges, links by the permuted
        // per-shard grouping. Every `LinkState` is identical (empty)
        // at construction, so chunking the original-order vector by
        // the permuted group sizes is exact.
        let node_sizes: Vec<usize> = (0..num_shards).map(|s| plan.range(s).len()).collect();
        let link_sizes: Vec<usize> = (0..num_shards)
            .map(|s| link_bounds[s + 1] - link_bounds[s])
            .collect();
        let ever_dead = faults.num_dead_links() > 0;

        let warmup = Cycle::new(cfg.warmup);
        Network {
            latency: LatencyRecorder::new(warmup),
            throughput: ThroughputMeter::new(warmup, n),
            router_sets: (0..num_shards).map(|_| ActiveSet::new(n)).collect(),
            link_sets: (0..num_shards).map(|_| ActiveSet::new(links.len())).collect(),
            injector_sets: (0..num_shards)
                .map(|_| ActiveSet::new(n * cfg.inject_channels))
                .collect(),
            link_wake: Sharded::from_flat(vec![Cycle::ZERO; links.len()], &link_sizes),
            ids_scratch: Vec::new(),
            live_flits: 0,
            undrained_injectors: 0,
            reference_stepper: false,
            force_sharded: false,
            shard_scratch: (0..num_shards)
                .map(|_| sharded::ShardScratch::default())
                .collect(),
            credit_scratch: Vec::new(),
            shard_threads: None,
            team: None,
            ever_dead,
            plan,
            node_shard,
            link_perm,
            link_orig: Arc::new(link_orig),
            link_bounds,
            link_shard,
            topo,
            routing,
            faults: Arc::new(faults),
            timeout,
            routers: Sharded::from_flat(routers, &node_sizes),
            injectors: Sharded::from_flat(injectors, &node_sizes),
            receivers: Sharded::from_flat(receivers, &node_sizes),
            sources,
            link_flits: vec![0; links.len()],
            links: Sharded::from_flat(links, &link_sizes),
            out_link: Arc::new(out_link),
            link_head: Arc::new(link_head),
            link_ids: Arc::new(link_ids),
            link_by_id,
            in_upstream: Arc::new(in_upstream),
            churn_firings: Vec::new(),
            churn_trackers: Vec::new(),
            churn_undrained: 0,
            killed: Arc::new(KilledMap::new()),
            registry_lifetime,
            fwd_tokens: Vec::new(),
            bwd_tokens: Vec::new(),
            fwd_scratch: Vec::new(),
            bwd_scratch: Vec::new(),
            worm_sources: Vec::new(),
            scheduled: VecDeque::new(),
            seq_counters: vec![0; n * n],
            next_message_id: 0,
            traversal_scratch: Vec::new(),
            stall_scratch: Vec::new(),
            streak_scratch: Vec::new(),
            trace,
            now: Cycle::ZERO,
            record_deliveries: false,
            delivery_log: Vec::new(),
            counters: NetCounters::default(),
            last_progress: Cycle::ZERO,
            deadlocked: false,
            offered_load,
            fault_rng: SimRng::from_seed(cfg.seed).split(777),
            cfg,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The network's configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// The topology.
    pub fn topology(&self) -> &dyn Topology {
        &*self.topo
    }

    /// The effective source timeout in cycles.
    pub fn timeout(&self) -> u64 {
        self.timeout
    }

    /// Mutable access to the killed-worm registry. The `Arc` is only
    /// cloned into shard-task contexts that are dropped before any
    /// serial code runs again, so the uniqueness assert holds and
    /// `make_mut` never actually copies.
    pub(crate) fn killed_mut(&mut self) -> &mut KilledMap {
        debug_assert_eq!(
            Arc::strong_count(&self.killed),
            1,
            "killed registry aliased at mutation time"
        );
        Arc::make_mut(&mut self.killed)
    }

    /// Mutable access to the fault model, same contract as
    /// [`Network::killed_mut`].
    pub(crate) fn faults_mut(&mut self) -> &mut FaultModel {
        debug_assert_eq!(
            Arc::strong_count(&self.faults),
            1,
            "fault model aliased at mutation time"
        );
        Arc::make_mut(&mut self.faults)
    }

    /// Live event counters.
    pub fn counters(&self) -> &NetCounters {
        &self.counters
    }

    /// `true` once the deadlock watchdog has fired.
    pub fn is_deadlocked(&self) -> bool {
        self.deadlocked
    }

    /// The router at `node` (for tests and instrumentation).
    pub fn router(&self, node: NodeId) -> &Router {
        &self.routers[node.index()]
    }

    /// The receiver at `node`.
    pub fn receiver(&self, node: NodeId) -> &Receiver {
        &self.receivers[node.index()]
    }

    /// Injection channel `channel` at `node`.
    pub fn injector(&self, node: NodeId, channel: usize) -> &Injector {
        &self.injectors[node.index()][channel]
    }

    /// Enables (or disables) logging of every delivered message,
    /// retrievable with [`Network::take_delivery_log`]. Off by default
    /// to keep long sweeps lean.
    pub fn set_record_deliveries(&mut self, on: bool) {
        self.record_deliveries = on;
    }

    /// Drains the recorded delivery log (empty unless
    /// [`Network::set_record_deliveries`] was enabled).
    pub fn take_delivery_log(&mut self) -> Vec<crate::receiver::DeliveredMessage> {
        std::mem::take(&mut self.delivery_log)
    }

    /// Whether structured event tracing is on (see
    /// [`NetworkBuilder::trace`](crate::NetworkBuilder::trace)).
    pub fn trace_enabled(&self) -> bool {
        self.trace.enabled()
    }

    /// Emission statistics of the trace sink (zeros when disabled).
    pub fn trace_stats(&self) -> TraceStats {
        self.trace.stats()
    }

    /// Drains the buffered trace events, oldest first (empty unless
    /// tracing is enabled).
    pub fn take_trace_events(&mut self) -> Vec<Event> {
        self.trace.drain()
    }

    /// Per-link utilization and stall-attribution counters, keyed by
    /// the topology's [`cr_sim::LinkId`]. Always maintained, tracing
    /// on or off: entry `i` describes the link whose source router
    /// output port feeds it.
    pub fn link_stall_stats(&self) -> Vec<(cr_sim::LinkId, LinkStats)> {
        let mut out = vec![(cr_sim::LinkId::new(0), LinkStats::default()); self.links.len()];
        for (n, ports) in self.out_link.iter().enumerate() {
            let stats = self.routers[n].link_stats();
            for (p, li) in ports.iter().enumerate() {
                if let (Some(li), Some(s)) = (li, stats.get(p)) {
                    out[*li] = (self.link_ids[*li], *s);
                }
            }
        }
        out
    }

    /// Flits currently buffered in routers or in flight on links.
    /// O(1): maintained incrementally at every flit movement.
    pub fn flits_in_flight(&self) -> usize {
        debug_assert_eq!(
            self.live_flits,
            self.routers.iter().map(Router::total_occupancy).sum::<usize>()
                + self.links.iter().map(|l| l.occupied).sum::<usize>(),
            "incremental flit count diverged"
        );
        self.live_flits
    }

    /// Selects the stepper: `true` runs the dense reference sweep
    /// (every phase walks every component, no cycle fast-forward),
    /// `false` (the default) the active-set scheduler. The two are
    /// byte-identical in every observable output; the dense path
    /// exists as the equivalence baseline and may be switched on at
    /// any point of a run (the active sets stay maintained while
    /// dense-stepping, so switching back is also legal).
    pub fn set_reference_stepper(&mut self, dense: bool) {
        self.reference_stepper = dense;
    }

    /// `true` while the dense reference stepper is selected.
    pub fn is_reference_stepper(&self) -> bool {
        self.reference_stepper
    }

    /// Forces the sharded stepper even when the plan has a single
    /// shard. Results are identical either way — the sharded stepper
    /// is byte-equal to the serial one at any shard count, including
    /// one — so this only changes which machinery runs: equivalence
    /// tests use it to push `shards = 1` through the persistent team,
    /// its ownership hand-offs, and its phase barriers.
    pub fn set_force_sharded(&mut self, on: bool) {
        self.force_sharded = on;
    }

    /// Number of spatial shards the active stepper runs with (1 =
    /// serial; the dense reference stepper is always serial).
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// Overrides the sharded stepper's worker-thread count (`None`,
    /// the default, sizes the phase pool to the machine's available
    /// parallelism, capped at the shard count). Results are identical
    /// for every value — equivalence tests force >1 to exercise real
    /// cross-thread handoff even on single-core machines; benchmarks
    /// may pin it for stable measurements.
    pub fn set_shard_threads(&mut self, threads: Option<usize>) {
        if self.shard_threads != threads {
            // The persistent team is sized from this setting; drop it
            // (joining its workers) so the next sharded step respawns
            // at the new width.
            self.team = None;
        }
        self.shard_threads = threads;
    }

    /// All traffic drained: nothing buffered or in flight, nothing
    /// scheduled, every injector empty. O(1) via the incremental
    /// counters.
    fn is_quiescent(&self) -> bool {
        debug_assert_eq!(
            self.undrained_injectors,
            self.injectors
                .iter()
                .flatten()
                .filter(|i| !i.is_drained())
                .count(),
            "incremental undrained-injector count diverged"
        );
        self.live_flits == 0 && self.scheduled.is_empty() && self.undrained_injectors == 0
    }

    /// Marks a router possibly-active (it gained a flit).
    fn arm_router(&mut self, node: usize) {
        self.router_sets[self.node_shard[node] as usize].insert(idx32(node));
    }

    /// Marks an injector possibly-active (it gained work).
    fn arm_injector(&mut self, node: usize, channel: usize) {
        self.injector_sets[self.node_shard[node] as usize]
            .insert(idx32(node * self.cfg.inject_channels + channel));
    }

    /// Parks `flit` on link `li`'s lane `vc`, due at `arrive`, keeping
    /// the link's active-set membership and wake estimate current.
    /// `li` is an original link index; state lives at the permuted
    /// slot.
    fn push_onto_link(&mut self, li: usize, vc: VcId, arrive: Cycle, flit: Flit) {
        let pi = self.link_perm[li] as usize;
        self.links[pi].lanes[vc.index()].push_back((arrive, flit));
        self.links[pi].occupied += 1;
        if self.link_sets[self.link_shard[pi] as usize].insert(idx32(pi))
            || arrive < self.link_wake[pi]
        {
            self.link_wake[pi] = arrive;
        }
    }

    /// [`Injector::enqueue`] keeping the undrained counter and the
    /// active set current.
    fn injector_enqueue(&mut self, node: usize, channel: usize, msg: PendingMessage) {
        let was_drained = self.injectors[node][channel].is_drained();
        self.injectors[node][channel].enqueue(msg);
        if was_drained {
            self.undrained_injectors += 1;
        }
        self.arm_injector(node, channel);
    }

    /// [`Injector::on_killed`] keeping the undrained counter and the
    /// active set current (a backward kill can re-queue a vulnerable
    /// message into an otherwise idle injector).
    fn injector_on_killed(
        &mut self,
        node: usize,
        channel: usize,
        now: Cycle,
        worm: WormId,
    ) -> Option<(u32, Cycle)> {
        let was_drained = self.injectors[node][channel].is_drained();
        let retx = self.injectors[node][channel].on_killed(now, worm);
        match (was_drained, self.injectors[node][channel].is_drained()) {
            (true, false) => self.undrained_injectors += 1,
            (false, true) => self.undrained_injectors -= 1,
            _ => {}
        }
        self.arm_injector(node, channel);
        retx
    }

    /// [`Injector::on_delivered`] keeping the undrained counter
    /// current.
    fn injector_on_delivered(&mut self, node: usize, channel: usize, message: MessageId) {
        let was_drained = self.injectors[node][channel].is_drained();
        self.injectors[node][channel].on_delivered(message);
        if !was_drained && self.injectors[node][channel].is_drained() {
            self.undrained_injectors -= 1;
        }
    }

    /// `(node, channel)` of the injector that sent `message`, unless
    /// delivery already retired it.
    fn source_of(&self, message: MessageId) -> Option<(usize, usize)> {
        match self.worm_sources.get(message.as_u64() as usize) {
            Some(&encoded) if encoded != SOURCE_GONE => {
                let chans = self.cfg.inject_channels;
                Some((encoded as usize / chans, encoded as usize % chans))
            }
            _ => None,
        }
    }

    /// Queues a message for transmission, bypassing the traffic
    /// sources — the programmatic send API used by the examples.
    ///
    /// Returns the message id.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, if either node is out of range, or if
    /// `payload_len < 2`.
    pub fn send_message(&mut self, src: NodeId, dst: NodeId, payload_len: u32) -> MessageId {
        assert!(src.index() < self.topo.num_nodes(), "src out of range");
        assert!(dst.index() < self.topo.num_nodes(), "dst out of range");
        assert_ne!(src, dst, "self-addressed message");
        assert!(payload_len >= 2, "a worm needs a head and a tail");
        let id = MessageId::new(self.next_message_id);
        self.next_message_id += 1;
        let flow = src.index() * self.topo.num_nodes() + dst.index();
        let msg_seq = self.seq_counters[flow];
        self.seq_counters[flow] += 1;
        let hops = self.topo.distance(src, dst);
        let budget = self.cfg.routing.misroute_budget() as usize;
        let channel = dst.index() % self.cfg.inject_channels;
        let msg = PendingMessage {
            id,
            src,
            dst,
            payload_len,
            msg_seq,
            created: self.now,
            hops,
            i_min: self.cfg.i_min(hops + budget),
            attempts: 0,
        };
        // Message ids are dense and monotonic, so the source table is
        // a plain push-indexed vector.
        debug_assert_eq!(self.worm_sources.len() as u64, id.as_u64());
        let encoded = idx32(src.index() * self.cfg.inject_channels + channel);
        debug_assert_ne!(encoded, SOURCE_GONE);
        self.worm_sources.push(encoded);
        self.injector_enqueue(src.index(), channel, msg);
        self.counters.messages_generated += 1;
        id
    }

    /// Schedules every message of `trace` for injection at its
    /// recorded time (events already in the past fire immediately).
    /// Composes with Bernoulli traffic and [`Network::send_message`].
    ///
    /// # Panics
    ///
    /// Panics if any event is self-addressed or out of range (checked
    /// when the event fires).
    pub fn schedule_trace(&mut self, trace: &cr_traffic::Trace) {
        // Insert each event behind its equal-time peers: that is the
        // order a stable sort of old-then-new would produce, and
        // equal-time firing order is observable (it fixes message-id
        // assignment), so it must not change.
        for &e in trace.events() {
            let pos = self.scheduled.partition_point(|queued| queued.at <= e.at);
            self.scheduled.insert(pos, e);
        }
    }

    /// Trace events not yet fired.
    pub fn scheduled_len(&self) -> usize {
        self.scheduled.len()
    }

    /// Advances the simulation one cycle.
    pub fn step(&mut self) {
        let now = self.now;

        // Live churn fires first, as serial orchestrator code shared
        // by every stepper — dense, active, and sharded all see the
        // same dead-link set for the whole cycle, which is what keeps
        // them byte-identical under churn (DESIGN.md §13).
        self.apply_churn(now);
        if !self.ever_dead && self.faults.num_dead_links() > 0 {
            self.ever_dead = true;
        }

        if self.reference_stepper {
            self.phase_arrivals_dense(now);
            self.phase_tokens(now);
            if let Some(threshold) = self.cfg.path_wide_threshold {
                self.phase_path_wide_dense(now, threshold);
            }
            self.phase_traffic(now);
            self.phase_injection_dense(now);
            self.phase_route_and_traverse_dense(now);
        } else if self.plan.is_serial() && !self.force_sharded {
            self.phase_arrivals_active(now);
            self.phase_tokens(now);
            if let Some(threshold) = self.cfg.path_wide_threshold {
                self.phase_path_wide_active(now, threshold);
            }
            self.phase_traffic(now);
            self.phase_injection_active(now);
            self.phase_route_and_traverse_active(now);
        } else {
            // Spatially sharded stepper (DESIGN.md §12): byte-identical
            // to the serial active path for any shard count.
            self.step_sharded(now);
        }
        self.phase_bookkeeping(now);

        self.now.tick();
    }

    /// Runs for `cycles` cycles (stopping early on deadlock) and
    /// returns the report.
    pub fn run(&mut self, cycles: u64) -> SimReport {
        let end = Cycle::new(self.now.as_u64().saturating_add(cycles));
        while self.now < end {
            if self.deadlocked {
                break;
            }
            if !self.reference_stepper {
                // Skip stretches of provably idle cycles. Jumping to
                // `end` exactly matches the dense stepper ticking
                // no-op cycles until the loop bound.
                self.fast_forward(end);
                if self.now >= end {
                    break;
                }
            }
            self.step();
        }
        self.report()
    }

    /// Runs until all traffic has drained (sources willing, injectors
    /// empty, network empty) or `max_cycles` elapse; returns `true` if
    /// quiescent. O(1) per cycle: the drain condition reads the
    /// incrementally maintained counters.
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> bool {
        let end = Cycle::new(self.now.as_u64().saturating_add(max_cycles));
        while self.now < end {
            if self.deadlocked {
                return false;
            }
            if self.is_quiescent() {
                return true;
            }
            if !self.reference_stepper {
                // The quiescence predicate cannot change across
                // skipped cycles (they are no-ops), so checking once
                // before the jump matches the dense per-cycle check.
                self.fast_forward(end);
                if self.now >= end {
                    break;
                }
            }
            self.step();
        }
        false
    }

    /// Post-warmup channel utilization: (mean, max) flits per cycle
    /// per link, over the measurement window so far.
    pub fn channel_utilization(&self) -> (f64, f64) {
        let window = self.now.as_u64().saturating_sub(self.cfg.warmup);
        if window == 0 || self.link_flits.is_empty() {
            return (0.0, 0.0);
        }
        let sum: u64 = self.link_flits.iter().sum();
        let max: u64 = self.link_flits.iter().copied().max().unwrap_or(0);
        (
            sum as f64 / self.link_flits.len() as f64 / window as f64,
            max as f64 / window as f64,
        )
    }

    /// Builds the report for the run so far.
    pub fn report(&self) -> SimReport {
        let mut counters = self.counters;
        for r in &self.routers {
            counters.escape_allocations += r.counters().escape_allocations;
            counters.unroutable_headers += r.counters().unroutable_headers;
            counters.orphan_flits_dropped += r.counters().orphan_flits_dropped;
            counters.flits_flushed += r.counters().flits_flushed;
        }
        for rx in &self.receivers {
            counters.out_of_order_arrivals += rx.counters().out_of_order_arrivals;
            counters.duplicates_dropped += rx.counters().duplicates_dropped;
            counters.partials_discarded += rx.counters().partials_discarded;
        }
        let stats = self.trace.stats();
        let mut trace = TraceSummary {
            enabled: self.trace.enabled(),
            events_emitted: stats.emitted,
            events_dropped: stats.dropped,
            links: self.links.len() as u64,
            ..TraceSummary::default()
        };
        let mut totals = LinkStats::default();
        for (_, s) in self.link_stall_stats() {
            totals.merge(&s);
            trace.max_link_stall_cycles = trace.max_link_stall_cycles.max(s.stall_total());
        }
        trace.stall_busy_cycles = totals.stall_busy;
        trace.stall_dead_link_cycles = totals.stall_dead_link;
        trace.stall_backpressure_cycles = totals.stall_backpressure;
        trace.link_flits_forwarded = totals.flits_forwarded;
        let (util_mean, util_max) = self.channel_utilization();
        SimReport {
            channel_utilization_mean: util_mean,
            channel_utilization_max: util_max,
            cycles: self.now.as_u64(),
            warmup: self.cfg.warmup,
            num_nodes: self.topo.num_nodes(),
            offered_load: self.offered_load,
            accepted_flits_per_node_cycle: self.throughput.flits_per_node_cycle(self.now),
            latency: self.latency.stats().clone(),
            latency_percentiles: (
                self.latency.percentile(0.50),
                self.latency.percentile(0.95),
                self.latency.percentile(0.99),
            ),
            latency_histogram: self.latency.histogram().clone(),
            counters,
            trace,
            churn: ChurnSummary {
                events: self
                    .churn_trackers
                    .iter()
                    .map(|t| ChurnEventReport {
                        at: t.at.as_u64(),
                        kind: t.kind.to_string(),
                        subject: t.subject,
                        links_killed: t.links_killed,
                        links_revived: t.links_revived,
                        affected_messages: t.affected_total,
                        drained: t.drained_at.is_some(),
                        time_to_drain: t.drained_at.map(|d| d - t.at).unwrap_or(0),
                    })
                    .collect(),
            },
            deadlocked: self.deadlocked,
            flits_in_flight: self.flits_in_flight(),
        }
    }

    // ------------------------------------------------------------------
    // Live fault churn (DESIGN.md §13)
    // ------------------------------------------------------------------

    /// Fires every churn entry due at cycle `now`: flips the fault
    /// model's dead-link set, keeps the upstream routers' dead-out
    /// flags in sync (the diagnosed-fault model is live state, not a
    /// construction-time decision), re-arms revived endpoints in the
    /// active sets, emits `link_killed` / `link_revived` trace events,
    /// and opens one drain tracker per event.
    ///
    /// Runs as serial orchestrator code at the top of [`Network::step`]
    /// before any phase, so all three steppers observe the same
    /// dead-link set for the whole cycle. Flits already in flight on a
    /// killed link are *not* flushed here: corruption is assessed at
    /// arrival time (`scan_link_arrivals` reads the live fault model),
    /// exactly as with static faults.
    fn apply_churn(&mut self, now: Cycle) {
        match self.faults.next_churn_at() {
            Some(at) if at <= now => {}
            _ => return,
        }
        let mut firings = std::mem::take(&mut self.churn_firings);
        firings.clear();
        let topo = Arc::clone(&self.topo);
        self.faults_mut().apply_churn_due(&*topo, now, &mut firings);
        let num_vcs = self.routing.num_vcs();
        for f in &firings {
            let mut affected: Vec<MessageId> = Vec::new();
            for &id in &f.killed {
                let li = self.link_by_id[id.index()] as usize;
                let (dst, dst_port) = self.link_head[li];
                if let Some((src, src_port)) = self.in_upstream[dst][dst_port.index()] {
                    self.routers[src].set_dead_out(src_port);
                    // Worms holding the upstream output are stranded
                    // mid-transmission by this kill.
                    for v in 0..num_vcs {
                        let vc = VcId::from_index(v);
                        if let Some((ip, ivc)) = self.routers[src].output_owner(src_port, vc) {
                            if let Some(w) = self.routers[src].worm_of(ip, ivc) {
                                affected.push(w.message);
                            }
                        }
                    }
                }
                // Flits already on the wire arrive corrupted.
                let pi = self.link_perm[li] as usize;
                for lane in &self.links[pi].lanes {
                    for (_, flit) in lane {
                        affected.push(flit.worm.message);
                    }
                }
                self.trace.emit(|| Event::LinkKilled { at: now, link: id });
            }
            for &id in &f.revived {
                let li = self.link_by_id[id.index()] as usize;
                let (dst, dst_port) = self.link_head[li];
                if let Some((src, src_port)) = self.in_upstream[dst][dst_port.index()] {
                    self.routers[src].clear_dead_out(src_port);
                    // Re-arm the upstream endpoint: a worm parked there
                    // waiting out the dead port must be reconsidered by
                    // the active stepper (dense sweeps everything
                    // anyway; extra set members are no-op skips, so
                    // byte-identity holds).
                    self.arm_router(src);
                }
                self.arm_router(dst);
                self.trace.emit(|| Event::LinkRevived { at: now, link: id });
            }
            affected.retain(|m| self.worm_sources[m.as_u64() as usize] != SOURCE_GONE);
            affected.sort_unstable();
            affected.dedup();
            let drained_at = if affected.is_empty() { Some(now) } else { None };
            if drained_at.is_none() {
                self.churn_undrained += 1;
            }
            self.churn_trackers.push(ChurnTracker {
                at: now,
                kind: f.event.kind(),
                subject: f.event.subject(),
                links_killed: f.killed.len() as u64,
                links_revived: f.revived.len() as u64,
                affected_total: affected.len() as u64,
                affected,
                drained_at,
            });
        }
        self.churn_firings = firings;
    }

    // ------------------------------------------------------------------
    // Phases
    // ------------------------------------------------------------------

    /// Dense arrivals: sweep every link in original-index order
    /// (skipping empty ones — a pure data check, not scheduling).
    fn phase_arrivals_dense(&mut self, now: Cycle) {
        for li in 0..self.links.len() {
            if self.links[self.link_perm[li] as usize].occupied == 0 {
                continue;
            }
            self.scan_link_arrivals(now, li);
        }
    }

    /// Active arrivals: only links in the active set, ascending (the
    /// dense sweep order), and only when a flit can actually be due
    /// (`link_wake <= now`). Links drained empty leave the set; the
    /// rest re-arm with a freshly computed wake.
    fn phase_arrivals_active(&mut self, now: Cycle) {
        let mut ids = std::mem::take(&mut self.ids_scratch);
        ids.clear();
        for set in &mut self.link_sets {
            set.drain_sorted_into(&mut ids);
        }
        if self.link_sets.len() > 1 {
            // Per-shard drains are permuted-index-sorted; the global
            // scan order must be ascending by *original* index (the
            // dense order). Serial one-shard runs skip this: the
            // permutation is the identity and one sorted drain is
            // already in order.
            for id in ids.iter_mut() {
                *id = self.link_orig[*id as usize];
            }
            ids.sort_unstable();
            for id in ids.iter_mut() {
                *id = self.link_perm[*id as usize];
            }
        }
        for &pi32 in &ids {
            let pi = pi32 as usize;
            if self.links[pi].occupied == 0 {
                continue; // purged empty since it was armed
            }
            if self.link_wake[pi] > now {
                // Nothing due yet; the dense scan would peek every
                // lane and break immediately.
                self.link_sets[self.link_shard[pi] as usize].insert(pi32);
                continue;
            }
            self.scan_link_arrivals(now, self.link_orig[pi] as usize);
            if self.links[pi].occupied > 0 {
                if let Some(wake) = self
                    .links[pi]
                    .lanes
                    .iter()
                    .filter_map(|lane| lane.front().map(|&(arrive, _)| arrive))
                    .min()
                {
                    self.link_wake[pi] = wake;
                }
                self.link_sets[self.link_shard[pi] as usize].insert(pi32);
            }
        }
        self.ids_scratch = ids;
    }

    /// Delivers every due flit of link `li` into its downstream
    /// router: fault injection, killed-worm filtering, corruption
    /// detection, then acceptance. Shared by both steppers.
    fn scan_link_arrivals(&mut self, now: Cycle, li: usize) {
        {
            let pi = self.link_perm[li] as usize;
            let (dst_node, dst_port) = self.link_head[li];
            for v in 0..self.links[pi].lanes.len() {
                let vc = VcId::from_index(v);
                loop {
                    // Wormhole channels are stall-holding: a flit
                    // stays in the channel's pipeline latches while
                    // the downstream buffer is full (the `link_depth`
                    // share of the credits covers exactly this
                    // occupancy).
                    let killed = match self.links[pi].lanes[v].front() {
                        Some(&(arrive, ref flit)) if arrive <= now => {
                            let killed = self.killed.contains(flit.worm);
                            if !killed && self.routers[dst_node].vc_is_full(dst_port, vc) {
                                break;
                            }
                            killed
                        }
                        _ => break,
                    };
                    let Some((_, mut flit)) = self.links[pi].lanes[v].pop_front() else {
                        break; // unreachable: front() just succeeded
                    };
                    self.links[pi].occupied -= 1;
                    flit.hops = flit.hops.saturating_add(1);

                    // Fault injection: dead links corrupt every flit
                    // (the detectable-failure model); healthy links
                    // corrupt at the transient rate.
                    let link_id = self.link_ids[li];
                    if self.faults.is_dead(link_id)
                        || self.faults.corrupts_flit(&mut self.fault_rng)
                    {
                        if !flit.corrupted {
                            self.counters.flits_corrupted += 1;
                        }
                        flit.corrupted = true;
                    }

                    // `killed` is still current: nothing between the
                    // peek and here touches the registry.
                    if killed {
                        self.counters.flits_dropped_killed += 1;
                        self.live_flits -= 1;
                        self.credit_into(dst_node, dst_port, vc);
                        continue;
                    }

                    if flit.corrupted && self.cfg.protocol.detects_faults() {
                        if self.faults.detects_corruption(&mut self.fault_rng) {
                            self.counters.flits_dropped_killed += 1;
                            self.live_flits -= 1;
                            self.credit_into(dst_node, dst_port, vc);
                            let worm = flit.worm;
                            self.trace.emit(|| Event::CorruptionDetected {
                                at: now,
                                link: link_id,
                                message: worm.message,
                                attempt: worm.attempt,
                            });
                            self.kill_worm_at(
                                now,
                                dst_node,
                                dst_port,
                                vc,
                                flit.worm,
                                KillCause::Fault,
                            );
                            continue;
                        }
                        self.counters.detections_missed += 1;
                    }

                    self.routers[dst_node].accept(now, dst_port, vc, flit);
                    self.arm_router(dst_node);
                    self.last_progress = now;
                }
            }
        }
    }

    /// Drops `worm`'s flits parked in the channel feeding
    /// `(node, in_port)`, restoring their credits — teardown of the
    /// stall-holding link stage.
    fn purge_link_into(&mut self, node: usize, in_port: PortId, vc: VcId, worm: cr_router::WormId) {
        let Some((up_node, up_out)) = self.in_upstream[node][in_port.index()] else {
            return;
        };
        let Some(li) = self.out_link[up_node][up_out.index()] else {
            return;
        };
        let pi = self.link_perm[li] as usize;
        let lane = &mut self.links[pi].lanes[vc.index()];
        let before = lane.len();
        lane.retain(|(_, f)| f.worm != worm);
        let purged = before - lane.len();
        self.links[pi].occupied -= purged;
        self.live_flits -= purged;
        for _ in 0..purged {
            self.counters.flits_dropped_killed += 1;
            self.routers[up_node].add_credit(up_out, vc);
        }
    }

    fn phase_tokens(&mut self, now: Cycle) {
        if self.fwd_tokens.is_empty() && self.bwd_tokens.is_empty() {
            // Provably a no-op (both steppers): the walk loops run
            // zero iterations and nothing else is touched.
            return;
        }
        if self.cfg.ablations.instant_teardown {
            // Idealized kill wire: complete every teardown walk within
            // the cycle. Each pass moves every token one hop; walks are
            // bounded by the longest path, so this terminates.
            while !self.fwd_tokens.is_empty() || !self.bwd_tokens.is_empty() {
                self.step_tokens_once(now);
            }
            return;
        }
        self.step_tokens_once(now);
    }

    fn step_tokens_once(&mut self, now: Cycle) {
        // Forward tokens: walk toward the destination. Swapping with
        // the scratch buffer (instead of `mem::take`) lets both lists
        // keep their capacity across teardown steps.
        self.fwd_scratch.clear();
        std::mem::swap(&mut self.fwd_tokens, &mut self.fwd_scratch);
        for i in 0..self.fwd_scratch.len() {
            let t = self.fwd_scratch[i];
            crate::network::debug_worm(t.worm, || format!("{now} FWD {} at n{} {} {}", t.worm, t.node, t.port, t.vc));
            let released = self.flush_and_credit(t.node, t.port, t.vc, t.worm);
            crate::network::debug_worm(t.worm, || format!("  released {released:?}"));
            match released {
                Some(RouteTarget::Link { port, vc }) => {
                    if let Some((next_node, next_port)) = self.downstream_of(t.node, port) {
                        self.fwd_tokens.push(Token {
                            worm: t.worm,
                            node: next_node,
                            port: next_port,
                            vc,
                        });
                    }
                }
                Some(RouteTarget::Eject { .. }) => {
                    self.receivers[t.node].discard(t.worm);
                }
                None => {}
            }
        }

        // Backward tokens: walk toward the source, ending at its
        // injector.
        self.bwd_scratch.clear();
        std::mem::swap(&mut self.bwd_tokens, &mut self.bwd_scratch);
        for i in 0..self.bwd_scratch.len() {
            let t = self.bwd_scratch[i];
            crate::network::debug_worm(t.worm, || format!("{now} BWD {} at n{} {} {}", t.worm, t.node, t.port, t.vc));
            let _ = self.flush_and_credit(t.node, t.port, t.vc, t.worm);
            self.continue_backward(now, t);
        }
    }

    fn phase_path_wide_dense(&mut self, now: Cycle, threshold: u64) {
        for node in 0..self.routers.len() {
            self.path_wide_one(now, threshold, node);
        }
    }

    /// Active path-wide detection: a stalled worm needs a buffered
    /// flit, so only routers in the active set can trigger. The set
    /// is iterated sorted but *not* drained — the route/traverse
    /// phase owns its drain-and-rebuild. Kills never insert routers,
    /// so the membership is stable across the walk.
    fn phase_path_wide_active(&mut self, now: Cycle, threshold: u64) {
        // Walking the per-shard sets in shard order visits nodes in
        // global ascending order (contiguous node ranges). Kills arm
        // injectors, never routers, so each set is stable while
        // walked.
        for s in 0..self.router_sets.len() {
            self.router_sets[s].sort();
            for k in 0..self.router_sets[s].len() {
                let node = self.router_sets[s].get(k) as usize;
                self.path_wide_one(now, threshold, node);
            }
        }
    }

    fn path_wide_one(&mut self, now: Cycle, threshold: u64, node: usize) {
        let mut stalled = std::mem::take(&mut self.stall_scratch);
        stalled.clear();
        self.routers[node].stalled_worms_into(now, threshold, &mut stalled);
        for k in 0..stalled.len() {
            let (port, vc, worm) = stalled[k];
            if self.killed.contains(worm) {
                continue;
            }
            self.counters.kills_path_wide += 1;
            if let Some((sn, sc)) = self.source_of(worm.message) {
                if self.injectors[sn][sc].is_committed(worm) {
                    self.counters.kills_committed += 1;
                }
            }
            self.kill_worm_at(now, node, port, vc, worm, KillCause::PathWide);
        }
        self.stall_scratch = stalled;
    }

    fn phase_traffic(&mut self, now: Cycle) {
        while self.scheduled.front().is_some_and(|e| e.at <= now) {
            let Some(e) = self.scheduled.pop_front() else {
                break; // unreachable: front() just succeeded
            };
            self.send_message(e.src, e.dst, e.length);
        }
        if self.sources.is_empty() {
            return;
        }
        for n in 0..self.sources.len() {
            if let Some(req) = self.sources[n].poll() {
                let src = NodeId::from_index(n);
                self.send_message(src, req.dst, idx32(req.length));
                // send_message stamps `created: self.now`, which is
                // `now` — correct.
            }
        }
        let _ = now;
    }

    fn phase_injection_dense(&mut self, now: Cycle) {
        for n in 0..self.routers.len() {
            for c in 0..self.cfg.inject_channels {
                self.step_injector_one(now, n, c);
            }
        }
    }

    /// Active injection: only injectors with a worm in hand or a
    /// queue, ascending flat id — identical to the dense (node,
    /// channel) order. Every way an idle injector gains work (enqueue,
    /// backward-kill re-queue) goes through an arming wrapper in an
    /// earlier phase, so the set is complete when drained; in-phase
    /// kills only concern the injector being stepped.
    fn phase_injection_active(&mut self, now: Cycle) {
        let chans = self.cfg.inject_channels;
        let mut ids = std::mem::take(&mut self.ids_scratch);
        ids.clear();
        // Shards own contiguous node-id ranges, so concatenating the
        // per-shard sorted drains in shard order is globally ascending.
        for set in &mut self.injector_sets {
            set.drain_sorted_into(&mut ids);
        }
        for &id in &ids {
            let (n, c) = (id as usize / chans, id as usize % chans);
            self.step_injector_one(now, n, c);
            if self.injectors[n][c].has_step_work() {
                self.injector_sets[self.node_shard[n] as usize].insert(id);
            }
        }
        self.ids_scratch = ids;
    }

    /// One injector's cycle, with all the network-side bookkeeping.
    /// `step` is a no-op that draws no RNG whenever
    /// [`Injector::has_step_work`] is false — the skip condition.
    fn step_injector_one(&mut self, now: Cycle, n: usize, c: usize) {
        let out = self.injectors[n][c].step(now, &mut self.routers[n]);
        if out.injected_flit {
            self.last_progress = now;
            self.live_flits += 1;
            self.arm_router(n);
            if out.injected_pad {
                self.counters.pad_flits_injected += 1;
            } else {
                self.counters.payload_flits_injected += 1;
            }
        }
        if out.restarted {
            self.counters.retransmissions += 1;
        }
        if let Some((worm, dst)) = out.started {
            self.trace.emit(|| Event::Inject {
                at: now,
                src: NodeId::from_index(n),
                dst,
                message: worm.message,
                attempt: worm.attempt,
            });
        }
        if let Some(worm) = out.committed {
            self.trace.emit(|| Event::Commit {
                at: now,
                src: NodeId::from_index(n),
                message: worm.message,
                attempt: worm.attempt,
            });
        }
        if let Some(worm) = out.kill {
            self.counters.kills_source_timeout += 1;
            let port = self.routers[n].inject_port(c);
            self.kill_worm_at(now, n, port, VcId::new(0), worm, KillCause::SourceTimeout);
            let retx = self.injector_on_killed(n, c, now, worm);
            self.emit_retransmit(now, worm.message, retx);
        }
    }

    fn phase_route_and_traverse_dense(&mut self, now: Cycle) {
        for n in 0..self.routers.len() {
            self.route_one(now, n);
        }
        for n in 0..self.routers.len() {
            self.orphan_credits_one(n);
        }
        for n in 0..self.routers.len() {
            self.traverse_one(now, n);
        }
        self.apply_deferred_credits();
        // Finished link-stall streaks become LinkStall events. The
        // routers only record streaks while tracing (the per-cause
        // counters are always on), so this drain is trace-gated too.
        if self.trace.enabled() {
            for n in 0..self.routers.len() {
                self.drain_streaks_one(n);
            }
        }
    }

    /// Active route/traverse: drain-and-rebuild over the router set.
    /// The four sub-stages keep the dense phase barriers (all routing
    /// completes before any orphan credit returns, all credits before
    /// any traversal), each walking the same member list ascending —
    /// so per-router RNG state, upstream credit interleaving and
    /// trace-event order match the dense sweep exactly. Routers not
    /// in the set are empty with no open streaks, for which every
    /// sub-stage is a no-op that draws no RNG. Nothing in this phase
    /// arms a router, so the drained list is complete.
    fn phase_route_and_traverse_active(&mut self, now: Cycle) {
        let mut ids = std::mem::take(&mut self.ids_scratch);
        ids.clear();
        // Contiguous node ranges per shard: concatenated sorted drains
        // are globally ascending.
        for set in &mut self.router_sets {
            set.drain_sorted_into(&mut ids);
        }
        for &n in &ids {
            self.route_one(now, n as usize);
        }
        for &n in &ids {
            self.orphan_credits_one(n as usize);
        }
        for &n in &ids {
            self.traverse_one(now, n as usize);
        }
        self.apply_deferred_credits();
        if self.trace.enabled() {
            for &n in &ids {
                self.drain_streaks_one(n as usize);
            }
        }
        for &n in &ids {
            let r = &self.routers[n as usize];
            if r.total_occupancy() > 0 || r.has_open_streaks() {
                self.router_sets[self.node_shard[n as usize] as usize].insert(n);
            }
        }
        self.ids_scratch = ids;
    }

    /// Routing/VC-allocation for one router; orphan drops leave the
    /// network, so they come off the live-flit count.
    fn route_one(&mut self, now: Cycle, n: usize) {
        let killed = &self.killed;
        let is_killed = |w: cr_router::WormId| killed.contains(w);
        let orphans =
            self.routers[n].route_and_allocate(now, &*self.routing, &*self.topo, &is_killed);
        self.live_flits -= orphans;
    }

    /// Returns the upstream credits for one router's orphan drops.
    fn orphan_credits_one(&mut self, n: usize) {
        let orphans = self.routers[n].take_orphan_credits();
        for (port, vc) in orphans {
            self.credit_into(n, port, vc);
        }
    }

    /// Switch traversal for one router: departing flits move onto
    /// links (re-arming them) or into the receiver, credits return
    /// upstream, deliveries retire messages.
    fn traverse_one(&mut self, now: Cycle, n: usize) {
        let mut traversals = std::mem::take(&mut self.traversal_scratch);
        traversals.clear();
        {
            let killed = &self.killed;
            let is_killed = |w: cr_router::WormId| killed.contains(w);
            self.routers[n].traverse_into(now, &is_killed, &mut traversals);
        }
        for k in 0..traversals.len() {
            let t = traversals[k];
            self.last_progress = now;
            if self.routers[n].port_kind(t.from_port) == PortKind::Node {
                // Credit-return latency: the freed slot is advertised
                // upstream at the end of the traverse sub-stage, not
                // mid-sweep, so no router's routing/traversal decision
                // this cycle can observe a credit released by a
                // lower-numbered router the same cycle. This is also
                // what makes per-shard traversal order-free: credits
                // buffered by every shard commit together at the
                // barrier (DESIGN.md §12).
                self.credit_scratch.push((idx32(n), t.from_port, t.from_vc));
            }
            match t.target {
                RouteTarget::Link { port, vc } => {
                    let Some(li) = self.out_link[n][port.index()] else {
                        // Routing only offers connected ports;
                        // stay loud in debug, drop defensively in
                        // release rather than killing the sweep
                        // worker.
                        debug_assert!(false, "route to disconnected port");
                        continue;
                    };
                    if now.as_u64() >= self.cfg.warmup {
                        self.link_flits[li] += 1;
                    }
                    // Router -> link: net zero for the live count.
                    self.push_onto_link(li, vc, now + self.cfg.channel_latency, t.flit);
                }
                RouteTarget::Eject { .. } => {
                    // The flit left the fabric, whether delivered or
                    // discarded below.
                    self.live_flits -= 1;
                    if self.killed.contains(t.flit.worm) {
                        self.counters.flits_dropped_killed += 1;
                        self.receivers[n].discard(t.flit.worm);
                        continue;
                    }
                    let delivered = self.receivers[n].on_flit(now, t.flit);
                    for m in delivered {
                        self.counters.messages_delivered += 1;
                        self.counters.payload_flits_delivered += u64::from(m.payload_len);
                        if m.corrupt {
                            self.counters.corrupt_payload_delivered += 1;
                        }
                        self.latency.record(m.created, now);
                        self.throughput
                            .record_flits(now, m.payload_len as usize);
                        self.trace.emit(|| Event::Deliver {
                            at: now,
                            src: m.src,
                            dst: m.dst,
                            message: m.id,
                            attempts: m.attempts,
                            latency: now.saturating_since(m.created),
                        });
                        if let Some((sn, sc)) = self.source_of(m.id) {
                            self.worm_sources[m.id.as_u64() as usize] = SOURCE_GONE;
                            self.injector_on_delivered(sn, sc, m.id);
                        }
                        if self.record_deliveries {
                            self.delivery_log.push(m);
                        }
                    }
                }
            }
        }
        self.traversal_scratch = traversals;
    }

    /// Converts one router's finished stall streaks into `LinkStall`
    /// trace events (only called while tracing).
    fn drain_streaks_one(&mut self, n: usize) {
        let mut streaks = std::mem::take(&mut self.streak_scratch);
        streaks.clear();
        self.routers[n].drain_streaks_into(&mut streaks);
        for s in &streaks {
            if let Some(li) = self.out_link[n][s.port.index()] {
                let link = self.link_ids[li];
                self.trace.emit(|| Event::LinkStall {
                    at: s.since,
                    link,
                    cause: s.cause,
                    cycles: s.cycles,
                });
            }
        }
        self.streak_scratch = streaks;
    }

    fn phase_bookkeeping(&mut self, now: Cycle) {
        if now.as_u64().is_multiple_of(256) {
            self.prune_registries(now);
        }
        if self.churn_undrained > 0 {
            // Retire delivered messages from open churn trackers.
            // Deliveries only happen on stepped cycles and bookkeeping
            // runs on every stepped cycle, so `drained_at` lands on
            // the same cycle under every stepper.
            let sources = &self.worm_sources;
            for t in &mut self.churn_trackers {
                if t.drained_at.is_some() {
                    continue;
                }
                t.affected
                    .retain(|m| sources[m.as_u64() as usize] != SOURCE_GONE);
                if t.affected.is_empty() {
                    t.drained_at = Some(now);
                    self.churn_undrained -= 1;
                }
            }
        }
        if now.saturating_since(self.last_progress) > self.cfg.deadlock_threshold
            && self.flits_in_flight() > 0
        {
            self.deadlocked = true;
        }
    }

    /// Expires old killed-registry and receiver bookkeeping as of
    /// cycle `now`. Both prunes are monotone in `now` (an entry
    /// removed at `t` is removed at every `t' > t`), so one catch-up
    /// call at the last skipped prune cycle is equivalent to the
    /// dense stepper's sequence of prunes — the fast-forward path
    /// relies on exactly that.
    fn prune_registries(&mut self, now: Cycle) {
        let lifetime = self.registry_lifetime;
        self.killed_mut()
            .retain(|t| now.saturating_since(t) < lifetime);
        let horizon = Cycle::new(now.as_u64().saturating_sub(4 * lifetime));
        for rx in &mut self.receivers {
            rx.prune(horizon);
        }
    }

    // ------------------------------------------------------------------
    // Cycle fast-forward
    // ------------------------------------------------------------------

    /// Jumps `now` to the earliest cycle at which anything can happen
    /// (clamped to `end`), when — and only when — every cycle in
    /// between is provably identical to a dense no-op step:
    ///
    /// * no traffic sources (each `poll` draws RNG every cycle);
    /// * no teardown tokens in flight;
    /// * every router in the active set is empty with no open stall
    ///   streak (so routing/traversal do nothing and close no streak);
    /// * every injector in the set is either stale or backing off
    ///   with a future resume cycle (`step` early-returns untouched);
    /// * every link in the set is empty or has no flit due yet.
    ///
    /// The jump target is the minimum of: the next scheduled traffic
    /// event, the earliest retransmission-backoff resume, the
    /// earliest link arrival, and — when flits are in flight — the
    /// first cycle the deadlock watchdog could fire, so a deadlock is
    /// declared at exactly the dense cycle. Skipped registry prunes
    /// are replayed as one catch-up [`Network::prune_registries`].
    fn fast_forward(&mut self, end: Cycle) {
        if !self.sources.is_empty()
            || !self.fwd_tokens.is_empty()
            || !self.bwd_tokens.is_empty()
        {
            return;
        }
        let now = self.now;
        let mut target = end;
        for set in &self.router_sets {
            for k in 0..set.len() {
                let n = set.get(k) as usize;
                if self.routers[n].total_occupancy() > 0 || self.routers[n].has_open_streaks() {
                    return;
                }
            }
        }
        let chans = self.cfg.inject_channels;
        for set in &self.injector_sets {
            for k in 0..set.len() {
                let id = set.get(k) as usize;
                let inj = &self.injectors[id / chans][id % chans];
                if !inj.has_step_work() {
                    continue; // stale entry
                }
                match inj.backoff_resume() {
                    Some(resume) if resume > now => target = target.min(resume),
                    _ => return, // sending or resuming now: must step
                }
            }
        }
        for set in &self.link_sets {
            for k in 0..set.len() {
                // Members are permuted indices — exactly how `links`
                // and `link_wake` are stored.
                let pi = set.get(k) as usize;
                if self.links[pi].occupied == 0 {
                    continue; // purged empty since it was armed
                }
                let wake = self.link_wake[pi];
                if wake <= now {
                    // Due (or a conservative stale-early estimate): step.
                    return;
                }
                target = target.min(wake);
            }
        }
        if let Some(e) = self.scheduled.front() {
            if e.at <= now {
                return;
            }
            target = target.min(e.at);
        }
        if let Some(at) = self.faults.next_churn_at() {
            // Pending churn is a wake source: the event cycle itself is
            // always stepped, never jumped past, so churn applies at
            // exactly the dense cycle.
            if at <= now {
                return;
            }
            target = target.min(at);
        }
        if self.live_flits > 0 {
            // First cycle at which `saturating_since(last_progress) >
            // deadlock_threshold` holds — the watchdog must observe it.
            target = target.min(self.last_progress + (self.cfg.deadlock_threshold + 1));
        }
        if target <= now {
            return;
        }
        // Catch-up prune for the skipped cycles [now, target - 1]: the
        // latest multiple-of-256 cycle in that range subsumes them all
        // (prunes are monotone in `now`).
        let last_skipped = target.as_u64() - 1;
        let prune_at = last_skipped - (last_skipped % 256);
        if prune_at >= now.as_u64() {
            self.prune_registries(Cycle::new(prune_at));
        }
        self.now = target;
    }

    // ------------------------------------------------------------------
    // Kill machinery
    // ------------------------------------------------------------------

    fn kill_worm_at(
        &mut self,
        now: Cycle,
        node: usize,
        port: PortId,
        vc: VcId,
        worm: WormId,
        cause: KillCause,
    ) {
        crate::network::debug_worm(worm, || format!("{now} KILL {worm} cause {cause:?} at n{node} {port} {vc}"));
        self.killed_mut().insert(worm, now);
        if cause == KillCause::Fault {
            self.counters.kills_fault += 1;
        }
        self.trace.emit(|| Event::Kill {
            at: now,
            node: NodeId::from_index(node),
            message: worm.message,
            attempt: worm.attempt,
            cause,
        });
        // Tear down from the kill point toward the destination.
        let released = self.flush_and_credit(node, port, vc, worm);
        match released {
            Some(RouteTarget::Link { port: op, vc: ov }) => {
                if let Some((next_node, next_port)) = self.downstream_of(node, op) {
                    self.fwd_tokens.push(Token {
                        worm,
                        node: next_node,
                        port: next_port,
                        vc: ov,
                    });
                }
            }
            Some(RouteTarget::Eject { .. }) => self.receivers[node].discard(worm),
            None => {}
        }
        // And from the kill point toward the source (no-op for
        // source-initiated kills, whose kill point is the injection
        // FIFO itself).
        if cause != KillCause::SourceTimeout {
            let t = Token {
                worm,
                node,
                port,
                vc,
            };
            self.continue_backward(now, t);
        }
    }

    /// Moves a backward token one hop toward the source; notifies the
    /// injector when it gets there (or when the chain has already
    /// drained behind the worm's tail).
    fn continue_backward(&mut self, now: Cycle, t: Token) {
        if self.routers[t.node].port_kind(t.port) == PortKind::Inject {
            let channel = t.port.index() - self.topo.num_ports(NodeId::from_index(t.node));
            let retx = self.injector_on_killed(t.node, channel, now, t.worm);
            self.emit_retransmit(now, t.worm.message, retx);
            return;
        }
        let up = self.in_upstream[t.node][t.port.index()];
        if let Some((up_node, up_out)) = up {
            if let Some((ip, iv)) = self.routers[up_node].output_owner(up_out, t.vc) {
                if self.routers[up_node].worm_of(ip, iv) == Some(t.worm) {
                    self.bwd_tokens.push(Token {
                        worm: t.worm,
                        node: up_node,
                        port: ip,
                        vc: iv,
                    });
                    return;
                }
            }
        }
        // The upstream chain has already released (the tail passed):
        // notify the source directly.
        crate::network::debug_worm(t.worm, || {
            let up = self.in_upstream[t.node][t.port.index()];
            format!("  BWD stop at n{} {} {}: upstream {:?}", t.node, t.port, t.vc, up)
        });
        self.notify_source(now, t.worm);
    }

    fn notify_source(&mut self, now: Cycle, worm: WormId) {
        if let Some((sn, sc)) = self.source_of(worm.message) {
            let retx = self.injector_on_killed(sn, sc, now, worm);
            self.emit_retransmit(now, worm.message, retx);
        }
    }

    /// Emits a `RetransmitScheduled` event for an
    /// [`Injector::on_killed`] return value (no-op for `None`: stale
    /// and duplicate kill notifications schedule nothing).
    fn emit_retransmit(&mut self, now: Cycle, message: MessageId, retx: Option<(u32, Cycle)>) {
        if let Some((attempt, resume_at)) = retx {
            self.trace.emit(|| Event::RetransmitScheduled {
                at: now,
                message,
                attempt,
                resume_at,
            });
        }
    }

    fn flush_and_credit(
        &mut self,
        node: usize,
        port: PortId,
        vc: VcId,
        worm: WormId,
    ) -> Option<RouteTarget> {
        let res = self.routers[node].flush_worm(port, vc, worm);
        self.live_flits -= res.flushed;
        if self.routers[node].port_kind(port) == PortKind::Node {
            for _ in 0..res.flushed {
                self.credit_into(node, port, vc);
            }
            // Flits of the worm parked in the feeding channel's
            // latches go with the buffer contents.
            self.purge_link_into(node, port, vc, worm);
        }
        res.released
    }

    /// Returns one credit to the router feeding `(node, in_port, vc)`.
    fn credit_into(&mut self, node: usize, in_port: PortId, vc: VcId) {
        if let Some((up_node, up_out)) = self.in_upstream[node][in_port.index()] {
            self.routers[up_node].add_credit(up_out, vc);
        }
    }

    /// Commits the credits buffered by the traverse sub-stage (see
    /// `traverse_one`): the end-of-stage barrier of the one-cycle
    /// credit-return latency.
    fn apply_deferred_credits(&mut self) {
        let mut credits = std::mem::take(&mut self.credit_scratch);
        for &(node, in_port, vc) in &credits {
            self.credit_into(node as usize, in_port, vc);
        }
        credits.clear();
        self.credit_scratch = credits;
    }

    fn downstream_of(&self, node: usize, out_port: PortId) -> Option<(usize, PortId)> {
        let li = self.out_link[node][out_port.index()]?;
        Some(self.link_head[li])
    }

}

impl Drop for Network {
    fn drop(&mut self) {
        // Shut the worker team down (its threads joined) before any
        // shard state is freed. The tasks own their chunks outright so
        // no worker can reference freed state even without this, but
        // the explicit order keeps teardown deterministic and lets the
        // no-thread-leak regression test assert it.
        self.team = None;
    }
}

/// Env-gated per-worm teardown tracing: set `CR_DEBUG_W=m<id>` to log
/// every kill and token step of that message to stderr. The filter is
/// read once per process.
pub(crate) fn debug_worm(worm: WormId, msg: impl Fn() -> String) {
    static FILTER: std::sync::OnceLock<Option<String>> = std::sync::OnceLock::new();
    let filter = FILTER.get_or_init(|| std::env::var("CR_DEBUG_W").ok());
    if let Some(v) = filter {
        if *v == format!("m{}", worm.message.as_u64()) {
            eprintln!("{}", msg());
        }
    }
}
