//! Spatially sharded stepper: the active-set cycle phases fanned out
//! over contiguous node-id shards on a persistent [`pool::Team`],
//! byte-identical to the serial stepper (DESIGN.md §12).
//!
//! # How identity is preserved
//!
//! Every shard owns a contiguous node-id range (`cr_sim::shard::Plan`)
//! and, with it, the routers, injectors and receivers of those nodes
//! plus every link whose *destination* lies in the range (arrivals
//! mutate the destination router, so links live with their heads; link
//! state is stored permuted so each shard's links are one contiguous
//! chunk). Four phases run as one team task per shard — arrivals,
//! injection, routing + orphan-credit collection, and switch traversal
//! — and everything a task would have to touch outside its shard is
//! buffered in its [`ShardScratch`] instead: upstream credit returns,
//! departing flits (a struct-of-arrays push buffer), teardown tokens,
//! killed-registry inserts, trace events, deliveries, and counter
//! deltas. At each phase barrier the buffers drain **in shard order**,
//! which — because shards are contiguous id ranges walked ascending —
//! reproduces exactly the global ascending order of the serial sweep.
//! Between the phase fan-outs the serial sub-phases (kill tokens,
//! path-wide detection, traffic, bookkeeping) run unchanged on the
//! orchestrator thread.
//!
//! # Ownership across the fan-out
//!
//! The team's workers are long-lived, so tasks must be `'static`: no
//! borrows of the network cross the dispatch boundary. Instead each
//! shard's mutable state is stored in per-shard chunks
//! ([`cr_sim::shard::Sharded`]) that [`Network::take_shard`] moves
//! into the task as a [`ShardWork`] value and the task returns when
//! done; the read-only tables ride along as `Arc` clones inside one
//! [`SharedCtx`] per fan-out. Every `SharedCtx` is dropped before the
//! barrier code runs, so the serially-mutated registries (`killed`,
//! `faults`) are uniquely owned again whenever `Arc::make_mut` touches
//! them.
//!
//! Two structural properties make the fan-out sound:
//!
//! * **Credit-return latency.** The traverse sub-stage's upstream
//!   credit returns are buffered and committed at the end of the
//!   sub-stage *in both steppers* (see `traverse_one`), so no
//!   same-cycle decision can observe a credit freed by another router
//!   this cycle — and therefore no cross-shard read order exists to
//!   preserve.
//! * **Quiet-cycle arrivals commute.** The parallel arrivals path is
//!   taken exactly when no arrival this cycle can draw the fault RNG
//!   or kill a worm — checked per cycle by
//!   [`Network::arrivals_parallel_ok`] (no transient corruption, and
//!   under fault-detecting protocols no dead link with a due flit and
//!   no possibly-roaming corrupted flit); otherwise the phase falls
//!   back to the serial global-order scan for the whole cycle.

use super::{LinkState, Network, Token, SOURCE_GONE};
use crate::injector::Injector;
use crate::killmap::KilledMap;
use crate::receiver::{DeliveredMessage, Receiver};
use crate::report::NetCounters;
use cr_faults::FaultModel;
use cr_router::{
    Flit, LinkStallStreak, PortKind, RouteTarget, Router, RoutingFunction, Traversal, WormId,
};
use cr_sim::pool;
use cr_sim::sched::ActiveSet;
use cr_sim::trace::{Event, KillCause};
use cr_sim::{Cycle, NodeId, PortId, VcId};
use cr_topology::Topology;
use std::sync::Arc;

/// Per-shard mutation buffers, drained at each phase barrier in shard
/// order. One per shard, persistent across cycles so the Vec
/// capacities amortize.
#[derive(Default)]
pub(crate) struct ShardScratch {
    /// Drained active-set members being walked this phase (router ids
    /// persist from the route fan-out to the traverse fan-out).
    ids: Vec<u32>,
    /// Per-router switch-traversal output, reused across routers.
    traversals: Vec<Traversal>,
    /// Finished link-stall streaks, reused across routers.
    streaks: Vec<LinkStallStreak>,
    /// Struct-of-arrays buffer of flits departing onto links:
    /// original link index, lane, flit. Applied (in order) at the
    /// traverse barrier — this is the cross-shard flit handoff.
    push_li: Vec<u32>,
    /// Lane (virtual channel) per push.
    push_vc: Vec<u8>,
    /// Flit payload per push.
    push_flit: Vec<Flit>,
    /// Upstream credit returns, already resolved to (upstream node,
    /// upstream output port, vc) — credits commute, so per-shard
    /// buffers applied in shard order equal the serial interleaving.
    credits: Vec<(u32, PortId, VcId)>,
    /// Messages completed by this shard's receivers, in traversal
    /// order; all delivery side effects run at the barrier.
    delivered: Vec<DeliveredMessage>,
    /// Forward teardown tokens from source-timeout kills.
    tokens: Vec<Token>,
    /// Worms killed this phase (all at the current cycle).
    kills: Vec<WormId>,
    /// Trace events in shard-local emission order (empty when tracing
    /// is off).
    events: Vec<Event>,
    /// `LinkStall` events, kept separate because the serial stepper
    /// emits all streaks after all deliveries.
    streak_events: Vec<Event>,
    /// Counter increments (plain sums; merge order cannot matter).
    counters: NetCounters,
    /// Net change to the live-flit count.
    live_delta: i64,
    /// Net change to the undrained-injector count.
    undrained_delta: i64,
    /// Whether anything in this shard made forward progress.
    progress: bool,
}

/// One shard's owned mutable state, moved into a team task for the
/// duration of a fan-out and handed back as the task's return value.
/// Taking all of it for every fan-out is O(1) per field (`mem::take`
/// of the chunk vectors) and sidesteps per-phase borrow plumbing.
pub(crate) struct ShardWork {
    routers: Vec<Router>,
    links: Vec<LinkState>,
    wake: Vec<Cycle>,
    injectors: Vec<Vec<Injector>>,
    receivers: Vec<Receiver>,
    router_set: ActiveSet,
    link_set: ActiveSet,
    injector_set: ActiveSet,
    scratch: ShardScratch,
}

/// Applies a signed delta to an unsigned incremental counter.
fn apply_delta(value: &mut usize, delta: i64) {
    let next = *value as i64 + delta;
    debug_assert!(next >= 0, "incremental counter went negative");
    *value = next.max(0) as usize;
}

/// Read-only context shared by every shard task of one fan-out:
/// `Arc` clones of the immutable tables (plus the registries that are
/// only mutated serially, between fan-outs). Dropped before the
/// barrier so the registries are uniquely owned again.
struct SharedCtx {
    now: Cycle,
    link_orig: Arc<Vec<u32>>,
    link_head: Arc<Vec<(usize, PortId)>>,
    link_ids: Arc<Vec<cr_sim::LinkId>>,
    out_link: Arc<Vec<Vec<Option<usize>>>>,
    in_upstream: Arc<Vec<Vec<Option<(usize, PortId)>>>>,
    killed: Arc<KilledMap>,
    faults: Arc<FaultModel>,
    routing: Arc<dyn RoutingFunction>,
    topo: Arc<dyn Topology>,
    trace_on: bool,
    chans: usize,
}

impl SharedCtx {
    /// Buffers a credit for the router feeding `(node, in_port, vc)`
    /// (the shard-safe analogue of `Network::credit_into`).
    fn buffer_credit(&self, scratch: &mut ShardScratch, node: usize, in_port: PortId, vc: VcId) {
        if let Some((up_node, up_out)) = self.in_upstream[node][in_port.index()] {
            scratch.credits.push((crate::network::idx32(up_node), up_out, vc));
        }
    }
}

impl Network {
    /// Worker threads for the phase fan-outs: the explicit override if
    /// set, else the machine's available parallelism (always capped at
    /// the shard count by the team sizing).
    fn shard_workers(&self) -> usize {
        self.shard_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// The fan-out context for the current cycle: `Arc` clones of the
    /// shared tables. Rebuilt per fan-out (cheap) because `killed`
    /// changes between the injection and route fan-outs.
    fn shared_ctx(&self, now: Cycle) -> Arc<SharedCtx> {
        Arc::new(SharedCtx {
            now,
            link_orig: Arc::clone(&self.link_orig),
            link_head: Arc::clone(&self.link_head),
            link_ids: Arc::clone(&self.link_ids),
            out_link: Arc::clone(&self.out_link),
            in_upstream: Arc::clone(&self.in_upstream),
            killed: Arc::clone(&self.killed),
            faults: Arc::clone(&self.faults),
            routing: Arc::clone(&self.routing),
            topo: Arc::clone(&self.topo),
            trace_on: self.trace.enabled(),
            chans: self.cfg.inject_channels,
        })
    }

    /// Moves shard `s`'s owned state out of the network (to hand to a
    /// team task). Every take is O(1); the placeholder left behind is
    /// never observed because the orchestrator blocks on the fan-out.
    fn take_shard(&mut self, s: usize) -> ShardWork {
        ShardWork {
            routers: self.routers.take_chunk(s),
            links: self.links.take_chunk(s),
            wake: self.link_wake.take_chunk(s),
            injectors: self.injectors.take_chunk(s),
            receivers: self.receivers.take_chunk(s),
            router_set: std::mem::replace(&mut self.router_sets[s], ActiveSet::new(0)),
            link_set: std::mem::replace(&mut self.link_sets[s], ActiveSet::new(0)),
            injector_set: std::mem::replace(&mut self.injector_sets[s], ActiveSet::new(0)),
            scratch: std::mem::take(&mut self.shard_scratch[s]),
        }
    }

    /// Returns shard `s`'s state after a fan-out.
    fn put_shard(&mut self, s: usize, w: ShardWork) {
        self.routers.put_chunk(s, w.routers);
        self.links.put_chunk(s, w.links);
        self.link_wake.put_chunk(s, w.wake);
        self.injectors.put_chunk(s, w.injectors);
        self.receivers.put_chunk(s, w.receivers);
        self.router_sets[s] = w.router_set;
        self.link_sets[s] = w.link_set;
        self.injector_sets[s] = w.injector_set;
        self.shard_scratch[s] = w.scratch;
    }

    /// Runs one fan-out on the persistent team (spawned lazily on
    /// first use): moves every shard's state into a task, dispatches
    /// the batch, and moves the results back. `task` must be the pure
    /// per-shard phase body — it sees only its `ShardWork` and the
    /// shared context.
    fn team_fan_out(
        &mut self,
        now: Cycle,
        task: fn(&SharedCtx, &mut ShardWork, usize, usize),
    ) {
        let num_shards = self.plan.num_shards();
        let ctx = self.shared_ctx(now);
        let mut tasks = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let ctx = Arc::clone(&ctx);
            let mut work = self.take_shard(s);
            let node_lo = self.plan.range(s).start;
            let links_lo = self.link_bounds[s];
            tasks.push(move || {
                task(&ctx, &mut work, node_lo, links_lo);
                work
            });
        }
        drop(ctx);
        let workers = self.shard_workers().min(num_shards);
        let team = self.team.get_or_insert_with(|| pool::Team::new(workers));
        let results = team.run(tasks);
        for (s, work) in results.into_iter().enumerate() {
            self.put_shard(s, work);
        }
    }

    /// One cycle of the sharded stepper: the serial phase list with
    /// arrivals, injection, routing and traversal fanned out per
    /// shard. Byte-identical to `Network::step`'s serial active path.
    pub(super) fn step_sharded(&mut self, now: Cycle) {
        self.sharded_arrivals(now);
        self.phase_tokens(now);
        if let Some(threshold) = self.cfg.path_wide_threshold {
            // Walks the per-shard router sets in shard order (global
            // ascending) on the orchestrator: kills are rare and walk
            // cross-shard teardown chains, so they stay serial.
            self.phase_path_wide_active(now, threshold);
        }
        self.phase_traffic(now);
        self.sharded_injection(now);
        self.sharded_route_and_traverse(now);
    }

    // --------------------------------------------------------------
    // Arrivals
    // --------------------------------------------------------------

    /// Whether this cycle's arrivals can run as parallel shard tasks:
    /// true exactly when no arrival can draw the fault RNG or kill a
    /// worm *this cycle*, so per-link work is confined to the link and
    /// its (shard-owned) destination router.
    ///
    /// Evaluated every cycle against the live fault model — churn and
    /// the check API flip it mid-run — cheap in the common cases (a
    /// couple of field reads; the per-dead-link scan only runs for
    /// detecting protocols with faults present):
    ///
    /// * Transient corruption draws RNG on every arrival: serial.
    /// * Non-detecting protocols never detect, kill, or draw the
    ///   detection RNG — corruption itself is a deterministic flag
    ///   flip on the shard-owned flit: parallel.
    /// * Detecting protocols with no dead link now and none ever:
    ///   nothing is corrupted, detection never fires: parallel.
    /// * A nonzero detection-miss rate may have let a corrupted flit
    ///   survive a past dead-link arrival and roam (`ever_dead`), and
    ///   its eventual arrival anywhere draws the detection RNG:
    ///   serial from the first kill onward.
    /// * Miss rate zero: corrupted flits never survive their
    ///   corrupting arrival, so only a *currently* dead link with a
    ///   flit due this cycle (`wake <= now`; wakes are never
    ///   stale-late) can fire detection — detection kills walk
    ///   cross-shard teardown chains, so such cycles run serial. FCR
    ///   storms therefore fan out on every cycle where no dead link
    ///   has a due flit, which is most of them.
    fn arrivals_parallel_ok(&self, now: Cycle) -> bool {
        if self.faults.transient_rate() != 0.0 {
            return false;
        }
        if !self.cfg.protocol.detects_faults() {
            return true;
        }
        if self.faults.num_dead_links() == 0 && !self.ever_dead {
            return true;
        }
        if self.faults.detection_miss_rate() != 0.0 {
            return false;
        }
        for id in self.faults.dead_links() {
            let li = self.link_by_id[id.index()] as usize;
            let pi = self.link_perm[li] as usize;
            if self.links[pi].occupied > 0 && self.link_wake[pi] <= now {
                return false;
            }
        }
        true
    }

    fn sharded_arrivals(&mut self, now: Cycle) {
        if !self.arrivals_parallel_ok(now) {
            self.phase_arrivals_active(now);
            return;
        }
        self.team_fan_out(now, arrivals_task);
        for s in 0..self.plan.num_shards() {
            let mut scratch = std::mem::take(&mut self.shard_scratch[s]);
            self.apply_shard_credits(&mut scratch);
            self.apply_shard_deltas(now, &mut scratch);
            self.shard_scratch[s] = scratch;
        }
    }

    // --------------------------------------------------------------
    // Injection
    // --------------------------------------------------------------

    fn sharded_injection(&mut self, now: Cycle) {
        self.team_fan_out(now, injection_task);
        for s in 0..self.plan.num_shards() {
            let mut scratch = std::mem::take(&mut self.shard_scratch[s]);
            // Serial order per injector: Kill event (buffered in
            // `events`), registry insert, forward token push. Nothing
            // in this phase reads the registry or the token lists, so
            // grouping the applies per kind is state-identical.
            for i in 0..scratch.kills.len() {
                let worm = scratch.kills[i];
                super::debug_worm(worm, || {
                    format!("{now} KILL {worm} cause SourceTimeout (sharded)")
                });
                self.killed_mut().insert(worm, now);
            }
            scratch.kills.clear();
            self.fwd_tokens.append(&mut scratch.tokens);
            self.apply_shard_deltas(now, &mut scratch);
            self.shard_scratch[s] = scratch;
        }
    }

    // --------------------------------------------------------------
    // Routing + switch traversal
    // --------------------------------------------------------------

    fn sharded_route_and_traverse(&mut self, now: Cycle) {
        // Fan-out 1: routing/VC-allocation, then orphan-credit
        // collection, per shard (the serial sub-stage barrier between
        // the two only orders router-local state).
        self.team_fan_out(now, route_task);
        // Barrier: orphan credits must be visible before any traversal
        // reads its credit counters (the serial sub-stage order).
        for s in 0..self.plan.num_shards() {
            let mut scratch = std::mem::take(&mut self.shard_scratch[s]);
            self.apply_shard_credits(&mut scratch);
            apply_delta(&mut self.live_flits, scratch.live_delta);
            scratch.live_delta = 0;
            self.shard_scratch[s] = scratch;
        }
        // Fan-out 2: switch traversal over the same drained id lists.
        self.team_fan_out(now, traverse_task);
        // Traverse barrier, in shard order: link pushes (the
        // cross-shard flit handoff, applied in the exact serial
        // order: routers ascending, traversals in emission order),
        // then deliveries with all their side effects, then the
        // deferred credits, then counter deltas. Pushes, deliveries
        // and credits touch disjoint state, so their relative grouping
        // cannot be observed.
        let channel_latency = self.cfg.channel_latency;
        let warmup = self.cfg.warmup;
        for s in 0..self.plan.num_shards() {
            let mut scratch = std::mem::take(&mut self.shard_scratch[s]);
            for i in 0..scratch.push_li.len() {
                let li = scratch.push_li[i] as usize;
                if now.as_u64() >= warmup {
                    self.link_flits[li] += 1;
                }
                self.push_onto_link(
                    li,
                    VcId::new(scratch.push_vc[i]),
                    now + channel_latency,
                    scratch.push_flit[i],
                );
            }
            scratch.push_li.clear();
            scratch.push_vc.clear();
            scratch.push_flit.clear();
            for i in 0..scratch.delivered.len() {
                let m = scratch.delivered[i];
                self.counters.messages_delivered += 1;
                self.counters.payload_flits_delivered += u64::from(m.payload_len);
                if m.corrupt {
                    self.counters.corrupt_payload_delivered += 1;
                }
                self.latency.record(m.created, now);
                self.throughput.record_flits(now, m.payload_len as usize);
                self.trace.emit(|| Event::Deliver {
                    at: now,
                    src: m.src,
                    dst: m.dst,
                    message: m.id,
                    attempts: m.attempts,
                    latency: now.saturating_since(m.created),
                });
                if let Some((sn, sc)) = self.source_of(m.id) {
                    self.worm_sources[m.id.as_u64() as usize] = SOURCE_GONE;
                    self.injector_on_delivered(sn, sc, m.id);
                }
                if self.record_deliveries {
                    self.delivery_log.push(m);
                }
            }
            scratch.delivered.clear();
            self.apply_shard_credits(&mut scratch);
            self.apply_shard_deltas(now, &mut scratch);
            self.shard_scratch[s] = scratch;
        }
        // The serial stepper emits every finished stall streak after
        // every delivery, so the streak events drain in a second pass.
        for s in 0..self.plan.num_shards() {
            let mut scratch = std::mem::take(&mut self.shard_scratch[s]);
            for ev in scratch.streak_events.drain(..) {
                self.trace.emit(|| ev);
            }
            self.shard_scratch[s] = scratch;
        }
    }

    // --------------------------------------------------------------
    // Barrier helpers
    // --------------------------------------------------------------

    /// Commits a shard's buffered upstream credit returns. Credits
    /// are commutative increments, so shard order equals the serial
    /// interleaving.
    fn apply_shard_credits(&mut self, scratch: &mut ShardScratch) {
        for &(up_node, up_out, vc) in &scratch.credits {
            self.routers[up_node as usize].add_credit(up_out, vc);
        }
        scratch.credits.clear();
    }

    /// Commits a shard's counter deltas, progress flag and buffered
    /// trace events.
    fn apply_shard_deltas(&mut self, now: Cycle, scratch: &mut ShardScratch) {
        self.counters.merge(&scratch.counters);
        scratch.counters = NetCounters::default();
        apply_delta(&mut self.live_flits, scratch.live_delta);
        scratch.live_delta = 0;
        apply_delta(&mut self.undrained_injectors, scratch.undrained_delta);
        scratch.undrained_delta = 0;
        if scratch.progress {
            self.last_progress = now;
            scratch.progress = false;
        }
        for ev in scratch.events.drain(..) {
            self.trace.emit(|| ev);
        }
    }
}

/// Arrivals for one shard: the serial `scan_link_arrivals` specialized
/// to the quiet-cycle gate (no RNG draw, no kill, no trace event),
/// walking the shard's links ascending.
fn arrivals_task(ctx: &SharedCtx, work: &mut ShardWork, node_lo: usize, links_lo: usize) {
    let now = ctx.now;
    let mut ids = std::mem::take(&mut work.scratch.ids);
    ids.clear();
    work.link_set.drain_sorted_into(&mut ids);
    for &pi32 in &ids {
        let pi = pi32 as usize;
        let local = pi - links_lo;
        if work.links[local].occupied == 0 {
            continue; // purged empty since it was armed
        }
        if work.wake[local] > now {
            work.link_set.insert(pi32);
            continue;
        }
        let li = ctx.link_orig[pi] as usize;
        let (dst_node, dst_port) = ctx.link_head[li];
        let dst_local = dst_node - node_lo;
        let link_dead = ctx.faults.is_dead(ctx.link_ids[li]);
        for v in 0..work.links[local].lanes.len() {
            let vc = VcId::from_index(v);
            loop {
                let killed = match work.links[local].lanes[v].front() {
                    Some(&(arrive, ref flit)) if arrive <= now => {
                        let killed = ctx.killed.contains(flit.worm);
                        if !killed && work.routers[dst_local].vc_is_full(dst_port, vc) {
                            break;
                        }
                        killed
                    }
                    _ => break,
                };
                let Some((_, mut flit)) = work.links[local].lanes[v].pop_front() else {
                    break; // unreachable: front() just succeeded
                };
                work.links[local].occupied -= 1;
                flit.hops = flit.hops.saturating_add(1);
                if link_dead {
                    // Dead link on a parallel cycle: the gate proves
                    // the protocol is non-detecting (a detecting
                    // protocol with a due flit on a dead link forces
                    // serial), so the flit is corrupted and carried on
                    // — the integrity-violation baseline.
                    if !flit.corrupted {
                        work.scratch.counters.flits_corrupted += 1;
                    }
                    flit.corrupted = true;
                }
                if killed {
                    work.scratch.counters.flits_dropped_killed += 1;
                    work.scratch.live_delta -= 1;
                    ctx.buffer_credit(&mut work.scratch, dst_node, dst_port, vc);
                    continue;
                }
                work.routers[dst_local].accept(now, dst_port, vc, flit);
                work.router_set.insert(crate::network::idx32(dst_node));
                work.scratch.progress = true;
            }
        }
        if work.links[local].occupied > 0 {
            if let Some(wake) = work.links[local]
                .lanes
                .iter()
                .filter_map(|lane| lane.front().map(|&(arrive, _)| arrive))
                .min()
            {
                work.wake[local] = wake;
            }
            work.link_set.insert(pi32);
        }
    }
    work.scratch.ids = ids;
}

/// Injection for one shard: the serial `step_injector_one` with the
/// source-timeout kill path inlined (a source kill only touches the
/// worm's own node — flush at the inject port releases no upstream
/// credit — plus the buffered registry insert and forward token).
fn injection_task(ctx: &SharedCtx, work: &mut ShardWork, node_lo: usize, _links_lo: usize) {
    let now = ctx.now;
    let chans = ctx.chans;
    let mut ids = std::mem::take(&mut work.scratch.ids);
    ids.clear();
    work.injector_set.drain_sorted_into(&mut ids);
    for &id in &ids {
        let (n, c) = (id as usize / chans, id as usize % chans);
        let local = n - node_lo;
        let out = work.injectors[local][c].step(now, &mut work.routers[local]);
        if out.injected_flit {
            work.scratch.progress = true;
            work.scratch.live_delta += 1;
            work.router_set.insert(crate::network::idx32(n));
            if out.injected_pad {
                work.scratch.counters.pad_flits_injected += 1;
            } else {
                work.scratch.counters.payload_flits_injected += 1;
            }
        }
        if out.restarted {
            work.scratch.counters.retransmissions += 1;
        }
        if ctx.trace_on {
            if let Some((worm, dst)) = out.started {
                work.scratch.events.push(Event::Inject {
                    at: now,
                    src: NodeId::from_index(n),
                    dst,
                    message: worm.message,
                    attempt: worm.attempt,
                });
            }
            if let Some(worm) = out.committed {
                work.scratch.events.push(Event::Commit {
                    at: now,
                    src: NodeId::from_index(n),
                    message: worm.message,
                    attempt: worm.attempt,
                });
            }
        }
        if let Some(worm) = out.kill {
            work.scratch.counters.kills_source_timeout += 1;
            work.scratch.kills.push(worm);
            if ctx.trace_on {
                work.scratch.events.push(Event::Kill {
                    at: now,
                    node: NodeId::from_index(n),
                    message: worm.message,
                    attempt: worm.attempt,
                    cause: KillCause::SourceTimeout,
                });
            }
            // `flush_and_credit` at an inject port: no upstream
            // credits, no feeding link to purge.
            let port = work.routers[local].inject_port(c);
            let res = work.routers[local].flush_worm(port, VcId::new(0), worm);
            work.scratch.live_delta -= res.flushed as i64;
            debug_assert_eq!(work.routers[local].port_kind(port), PortKind::Inject);
            match res.released {
                Some(RouteTarget::Link { port: op, vc: ov }) => {
                    if let Some(li) = ctx.out_link[n][op.index()] {
                        let (next_node, next_port) = ctx.link_head[li];
                        work.scratch.tokens.push(Token {
                            worm,
                            node: next_node,
                            port: next_port,
                            vc: ov,
                        });
                    }
                }
                Some(RouteTarget::Eject { .. }) => work.receivers[local].discard(worm),
                None => {}
            }
            // `injector_on_killed` with the undrained count buffered.
            let was_drained = work.injectors[local][c].is_drained();
            let retx = work.injectors[local][c].on_killed(now, worm);
            match (was_drained, work.injectors[local][c].is_drained()) {
                (true, false) => work.scratch.undrained_delta += 1,
                (false, true) => work.scratch.undrained_delta -= 1,
                _ => {}
            }
            work.injector_set.insert(id);
            if ctx.trace_on {
                if let Some((attempt, resume_at)) = retx {
                    work.scratch.events.push(Event::RetransmitScheduled {
                        at: now,
                        message: worm.message,
                        attempt,
                        resume_at,
                    });
                }
            }
        }
        if work.injectors[local][c].has_step_work() {
            work.injector_set.insert(id);
        }
    }
    work.scratch.ids = ids;
}

/// Routing/VC-allocation plus orphan-credit collection for one shard.
/// The drained router ids stay in `scratch.ids` for the traverse
/// fan-out (the serial phase drains the set once for all four
/// sub-stages).
fn route_task(ctx: &SharedCtx, work: &mut ShardWork, node_lo: usize, _links_lo: usize) {
    let now = ctx.now;
    let mut ids = std::mem::take(&mut work.scratch.ids);
    ids.clear();
    work.router_set.drain_sorted_into(&mut ids);
    let killed = &ctx.killed;
    let is_killed = |w: WormId| killed.contains(w);
    for &n in &ids {
        let local = n as usize - node_lo;
        let orphans =
            work.routers[local].route_and_allocate(now, &*ctx.routing, &*ctx.topo, &is_killed);
        work.scratch.live_delta -= orphans as i64;
    }
    for &n in &ids {
        let local = n as usize - node_lo;
        let orphans = work.routers[local].take_orphan_credits();
        for (port, vc) in orphans {
            ctx.buffer_credit(&mut work.scratch, n as usize, port, vc);
        }
    }
    work.scratch.ids = ids;
}

/// Switch traversal for one shard, over the ids drained by
/// [`route_task`]: departing flits buffer into the struct-of-arrays
/// push buffer (links may belong to another shard) or deliver into the
/// shard's own receivers; upstream credits buffer per the
/// credit-return latency; finished stall streaks buffer as events.
fn traverse_task(ctx: &SharedCtx, work: &mut ShardWork, node_lo: usize, _links_lo: usize) {
    let now = ctx.now;
    let mut ids = std::mem::take(&mut work.scratch.ids);
    let mut traversals = std::mem::take(&mut work.scratch.traversals);
    let killed = &ctx.killed;
    let is_killed = |w: WormId| killed.contains(w);
    for &n in &ids {
        let local = n as usize - node_lo;
        traversals.clear();
        work.routers[local].traverse_into(now, &is_killed, &mut traversals);
        for k in 0..traversals.len() {
            let t = traversals[k];
            work.scratch.progress = true;
            if work.routers[local].port_kind(t.from_port) == PortKind::Node {
                ctx.buffer_credit(&mut work.scratch, n as usize, t.from_port, t.from_vc);
            }
            match t.target {
                RouteTarget::Link { port, vc } => {
                    let Some(li) = ctx.out_link[n as usize][port.index()] else {
                        debug_assert!(false, "route to disconnected port");
                        continue;
                    };
                    work.scratch.push_li.push(crate::network::idx32(li));
                    work.scratch.push_vc.push(vc.as_u8());
                    work.scratch.push_flit.push(t.flit);
                }
                RouteTarget::Eject { .. } => {
                    work.scratch.live_delta -= 1;
                    if ctx.killed.contains(t.flit.worm) {
                        work.scratch.counters.flits_dropped_killed += 1;
                        work.receivers[local].discard(t.flit.worm);
                        continue;
                    }
                    let delivered = work.receivers[local].on_flit(now, t.flit);
                    work.scratch.delivered.extend(delivered);
                }
            }
        }
    }
    if ctx.trace_on {
        let mut streaks = std::mem::take(&mut work.scratch.streaks);
        for &n in &ids {
            let local = n as usize - node_lo;
            streaks.clear();
            work.routers[local].drain_streaks_into(&mut streaks);
            for st in &streaks {
                if let Some(li) = ctx.out_link[n as usize][st.port.index()] {
                    work.scratch.streak_events.push(Event::LinkStall {
                        at: st.since,
                        link: ctx.link_ids[li],
                        cause: st.cause,
                        cycles: st.cycles,
                    });
                }
            }
        }
        work.scratch.streaks = streaks;
    }
    for &n in &ids {
        let local = n as usize - node_lo;
        let r = &work.routers[local];
        if r.total_occupancy() > 0 || r.has_open_streaks() {
            work.router_set.insert(n);
        }
    }
    ids.clear();
    work.scratch.ids = ids;
    work.scratch.traversals = traversals;
}
