//! Spatially sharded stepper: the active-set cycle phases fanned out
//! over contiguous node-id shards on the `cr_sim::pool` scoped-thread
//! pool, byte-identical to the serial stepper (DESIGN.md §12).
//!
//! # How identity is preserved
//!
//! Every shard owns a contiguous node-id range (`cr_sim::shard::Plan`)
//! and, with it, the routers, injectors and receivers of those nodes
//! plus every link whose *destination* lies in the range (arrivals
//! mutate the destination router, so links live with their heads; link
//! state is stored permuted so each shard's links are one contiguous
//! slice). Four phases run as one pool task per shard — arrivals,
//! injection, routing + orphan-credit collection, and switch traversal
//! — and everything a task would have to touch outside its shard is
//! buffered in its [`ShardScratch`] instead: upstream credit returns,
//! departing flits (a struct-of-arrays push buffer), teardown tokens,
//! killed-registry inserts, trace events, deliveries, and counter
//! deltas. At each phase barrier the buffers drain **in shard order**,
//! which — because shards are contiguous id ranges walked ascending —
//! reproduces exactly the global ascending order of the serial sweep.
//! Between the phase fan-outs the serial sub-phases (kill tokens,
//! path-wide detection, traffic, bookkeeping) run unchanged on the
//! orchestrator thread.
//!
//! Two structural properties make the fan-out sound:
//!
//! * **Credit-return latency.** The traverse sub-stage's upstream
//!   credit returns are buffered and committed at the end of the
//!   sub-stage *in both steppers* (see `traverse_one`), so no
//!   same-cycle decision can observe a credit freed by another router
//!   this cycle — and therefore no cross-shard read order exists to
//!   preserve.
//! * **Fault-free arrivals commute.** The parallel arrivals path is
//!   only taken when no arrival can draw the fault RNG or kill a worm
//!   (no transient corruption, and dead links only matter to
//!   fault-detecting protocols); otherwise the phase falls back to the
//!   serial global-order scan for the whole cycle.

use super::{LinkState, Network, Token, SOURCE_GONE};
use crate::injector::Injector;
use crate::killmap::KilledMap;
use crate::receiver::{DeliveredMessage, Receiver};
use crate::report::NetCounters;
use cr_faults::FaultModel;
use cr_router::{
    Flit, LinkStallStreak, PortKind, RouteTarget, Router, RoutingFunction, Traversal, WormId,
};
use cr_sim::pool;
use cr_sim::sched::ActiveSet;
use cr_sim::trace::{Event, KillCause};
use cr_sim::{Cycle, NodeId, PortId, VcId};
use cr_topology::Topology;

/// Per-shard mutation buffers, drained at each phase barrier in shard
/// order. One per shard, persistent across cycles so the Vec
/// capacities amortize.
#[derive(Default)]
pub(crate) struct ShardScratch {
    /// Drained active-set members being walked this phase (router ids
    /// persist from the route fan-out to the traverse fan-out).
    ids: Vec<u32>,
    /// Per-router switch-traversal output, reused across routers.
    traversals: Vec<Traversal>,
    /// Finished link-stall streaks, reused across routers.
    streaks: Vec<LinkStallStreak>,
    /// Struct-of-arrays buffer of flits departing onto links:
    /// original link index, lane, flit. Applied (in order) at the
    /// traverse barrier — this is the cross-shard flit handoff.
    push_li: Vec<u32>,
    /// Lane (virtual channel) per push.
    push_vc: Vec<u8>,
    /// Flit payload per push.
    push_flit: Vec<Flit>,
    /// Upstream credit returns, already resolved to (upstream node,
    /// upstream output port, vc) — credits commute, so per-shard
    /// buffers applied in shard order equal the serial interleaving.
    credits: Vec<(u32, PortId, VcId)>,
    /// Messages completed by this shard's receivers, in traversal
    /// order; all delivery side effects run at the barrier.
    delivered: Vec<DeliveredMessage>,
    /// Forward teardown tokens from source-timeout kills.
    tokens: Vec<Token>,
    /// Worms killed this phase (all at the current cycle).
    kills: Vec<WormId>,
    /// Trace events in shard-local emission order (empty when tracing
    /// is off).
    events: Vec<Event>,
    /// `LinkStall` events, kept separate because the serial stepper
    /// emits all streaks after all deliveries.
    streak_events: Vec<Event>,
    /// Counter increments (plain sums; merge order cannot matter).
    counters: NetCounters,
    /// Net change to the live-flit count.
    live_delta: i64,
    /// Net change to the undrained-injector count.
    undrained_delta: i64,
    /// Whether anything in this shard made forward progress.
    progress: bool,
}

/// Splits `items` into consecutive mutable chunks of the given sizes
/// (one per shard). Sizes must sum to the slice length.
fn split_mut<'a, T>(mut items: &'a mut [T], sizes: impl Iterator<Item = usize>) -> Vec<&'a mut [T]> {
    let mut out = Vec::new();
    for len in sizes {
        let (head, tail) = items.split_at_mut(len);
        out.push(head);
        items = tail;
    }
    debug_assert!(items.is_empty(), "split sizes must cover the slice");
    out
}

/// Applies a signed delta to an unsigned incremental counter.
fn apply_delta(value: &mut usize, delta: i64) {
    let next = *value as i64 + delta;
    debug_assert!(next >= 0, "incremental counter went negative");
    *value = next.max(0) as usize;
}

/// Read-only state shared by every shard task of one phase.
struct Shared<'a> {
    now: Cycle,
    link_orig: &'a [u32],
    link_head: &'a [(usize, PortId)],
    link_ids: &'a [cr_sim::LinkId],
    out_link: &'a [Vec<Option<usize>>],
    in_upstream: &'a [Vec<Option<(usize, PortId)>>],
    killed: &'a KilledMap,
    faults: &'a FaultModel,
    routing: &'a dyn RoutingFunction,
    topo: &'a dyn Topology,
    trace_on: bool,
    chans: usize,
}

impl<'a> Shared<'a> {
    /// Buffers a credit for the router feeding `(node, in_port, vc)`
    /// (the shard-safe analogue of `Network::credit_into`).
    fn buffer_credit(
        &self,
        scratch: &mut ShardScratch,
        node: usize,
        in_port: PortId,
        vc: VcId,
    ) {
        if let Some((up_node, up_out)) = self.in_upstream[node][in_port.index()] {
            scratch.credits.push((crate::network::idx32(up_node), up_out, vc));
        }
    }
}

impl Network {
    /// Worker threads for the phase fan-outs: the explicit override if
    /// set, else the machine's available parallelism (always capped at
    /// the shard count by the callers).
    fn shard_workers(&self) -> usize {
        self.shard_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// One cycle of the sharded stepper: the serial phase list with
    /// arrivals, injection, routing and traversal fanned out per
    /// shard. Byte-identical to `Network::step`'s serial active path.
    pub(super) fn step_sharded(&mut self, now: Cycle) {
        self.sharded_arrivals(now);
        self.phase_tokens(now);
        if let Some(threshold) = self.cfg.path_wide_threshold {
            // Walks the per-shard router sets in shard order (global
            // ascending) on the orchestrator: kills are rare and walk
            // cross-shard teardown chains, so they stay serial.
            self.phase_path_wide_active(now, threshold);
        }
        self.phase_traffic(now);
        self.sharded_injection(now);
        self.sharded_route_and_traverse(now);
    }

    // --------------------------------------------------------------
    // Arrivals
    // --------------------------------------------------------------

    fn sharded_arrivals(&mut self, now: Cycle) {
        // The parallel path requires that no arrival can draw the
        // fault RNG (transient corruption) or kill a worm (corruption
        // detection): then per-link arrival work is confined to the
        // link and its destination router — both shard-owned — and
        // the only cross-shard effect (upstream credits for
        // killed-worm drops) commutes and is buffered to the barrier.
        //
        // Deliberately re-evaluated every cycle against the *live*
        // fault model, not cached at construction: churn flips
        // `num_dead_links` mid-run, and a cached answer would let the
        // parallel path race corruption kills after a mid-run
        // `kill_link` (or keep the slow serial path after the last
        // `revive_link`).
        let parallel_ok = self.faults.transient_rate() == 0.0
            && (self.faults.num_dead_links() == 0 || !self.cfg.protocol.detects_faults());
        if !parallel_ok {
            self.phase_arrivals_active(now);
            return;
        }
        let workers = self.shard_workers().min(self.plan.num_shards());
        let Network {
            routers,
            links,
            link_wake,
            link_sets,
            router_sets,
            shard_scratch,
            link_bounds,
            plan,
            link_orig,
            link_head,
            link_ids,
            out_link,
            in_upstream,
            killed,
            faults,
            routing,
            topo,
            trace,
            cfg,
            ..
        } = self;
        let shared = &Shared {
            now,
            link_orig: link_orig.as_slice(),
            link_head: link_head.as_slice(),
            link_ids: link_ids.as_slice(),
            out_link: out_link.as_slice(),
            in_upstream: in_upstream.as_slice(),
            killed: &*killed,
            faults: &*faults,
            routing: &**routing,
            topo: &**topo,
            trace_on: trace.enabled(),
            chans: cfg.inject_channels,
        };
        let node_sizes = || plan.bounds().windows(2).map(|w| (w[1] - w[0]) as usize);
        let link_sizes = || link_bounds.windows(2).map(|w| w[1] - w[0]);
        let routers_split = split_mut(routers, node_sizes());
        let links_split = split_mut(links, link_sizes());
        let wake_split = split_mut(link_wake, link_sizes());
        let mut tasks = Vec::with_capacity(plan.num_shards());
        for (s, ((((routers_s, links_s), wake_s), link_set), (router_set, scratch))) in
            routers_split
                .into_iter()
                .zip(links_split)
                .zip(wake_split)
                .zip(link_sets.iter_mut())
                .zip(router_sets.iter_mut().zip(shard_scratch.iter_mut()))
                .enumerate()
        {
            let node_lo = plan.bounds()[s] as usize;
            let links_lo = link_bounds[s];
            tasks.push(move || {
                arrivals_task(
                    shared, routers_s, links_s, wake_s, link_set, router_set, scratch, node_lo,
                    links_lo,
                );
            });
        }
        pool::run(workers, tasks);
        for s in 0..self.plan.num_shards() {
            let mut scratch = std::mem::take(&mut self.shard_scratch[s]);
            self.apply_shard_credits(&mut scratch);
            self.apply_shard_deltas(now, &mut scratch);
            self.shard_scratch[s] = scratch;
        }
    }

    // --------------------------------------------------------------
    // Injection
    // --------------------------------------------------------------

    fn sharded_injection(&mut self, now: Cycle) {
        let workers = self.shard_workers().min(self.plan.num_shards());
        let Network {
            routers,
            injectors,
            receivers,
            injector_sets,
            router_sets,
            shard_scratch,
            plan,
            link_orig,
            link_head,
            link_ids,
            out_link,
            in_upstream,
            killed,
            faults,
            routing,
            topo,
            trace,
            cfg,
            ..
        } = self;
        let shared = &Shared {
            now,
            link_orig: link_orig.as_slice(),
            link_head: link_head.as_slice(),
            link_ids: link_ids.as_slice(),
            out_link: out_link.as_slice(),
            in_upstream: in_upstream.as_slice(),
            killed: &*killed,
            faults: &*faults,
            routing: &**routing,
            topo: &**topo,
            trace_on: trace.enabled(),
            chans: cfg.inject_channels,
        };
        let node_sizes = || plan.bounds().windows(2).map(|w| (w[1] - w[0]) as usize);
        let routers_split = split_mut(routers, node_sizes());
        let injectors_split = split_mut(injectors, node_sizes());
        let receivers_split = split_mut(receivers, node_sizes());
        let mut tasks = Vec::with_capacity(plan.num_shards());
        for (s, ((((routers_s, injectors_s), receivers_s), injector_set), (router_set, scratch))) in
            routers_split
                .into_iter()
                .zip(injectors_split)
                .zip(receivers_split)
                .zip(injector_sets.iter_mut())
                .zip(router_sets.iter_mut().zip(shard_scratch.iter_mut()))
                .enumerate()
        {
            let node_lo = plan.bounds()[s] as usize;
            tasks.push(move || {
                injection_task(
                    shared,
                    routers_s,
                    injectors_s,
                    receivers_s,
                    injector_set,
                    router_set,
                    scratch,
                    node_lo,
                );
            });
        }
        pool::run(workers, tasks);
        for s in 0..self.plan.num_shards() {
            let mut scratch = std::mem::take(&mut self.shard_scratch[s]);
            // Serial order per injector: Kill event (buffered in
            // `events`), registry insert, forward token push. Nothing
            // in this phase reads the registry or the token lists, so
            // grouping the applies per kind is state-identical.
            for &worm in &scratch.kills {
                super::debug_worm(worm, || {
                    format!("{now} KILL {worm} cause SourceTimeout (sharded)")
                });
                self.killed.insert(worm, now);
            }
            scratch.kills.clear();
            self.fwd_tokens.append(&mut scratch.tokens);
            self.apply_shard_deltas(now, &mut scratch);
            self.shard_scratch[s] = scratch;
        }
    }

    // --------------------------------------------------------------
    // Routing + switch traversal
    // --------------------------------------------------------------

    fn sharded_route_and_traverse(&mut self, now: Cycle) {
        let workers = self.shard_workers().min(self.plan.num_shards());
        // Fan-out 1: routing/VC-allocation, then orphan-credit
        // collection, per shard (the serial sub-stage barrier between
        // the two only orders router-local state).
        {
            let Network {
                routers,
                router_sets,
                shard_scratch,
                plan,
                link_orig,
                link_head,
                link_ids,
                out_link,
                in_upstream,
                killed,
                faults,
                routing,
                topo,
                trace,
                cfg,
                ..
            } = &mut *self;
            let shared = &Shared {
                now,
                link_orig: link_orig.as_slice(),
                link_head: link_head.as_slice(),
                link_ids: link_ids.as_slice(),
                out_link: out_link.as_slice(),
                in_upstream: in_upstream.as_slice(),
                killed: &*killed,
                faults: &*faults,
                routing: &**routing,
                topo: &**topo,
                trace_on: trace.enabled(),
                chans: cfg.inject_channels,
            };
            let node_sizes = || plan.bounds().windows(2).map(|w| (w[1] - w[0]) as usize);
            let routers_split = split_mut(routers, node_sizes());
            let mut tasks = Vec::with_capacity(plan.num_shards());
            for (s, ((routers_s, router_set), scratch)) in routers_split
                .into_iter()
                .zip(router_sets.iter_mut())
                .zip(shard_scratch.iter_mut())
                .enumerate()
            {
                let node_lo = plan.bounds()[s] as usize;
                tasks.push(move || route_task(shared, routers_s, router_set, scratch, node_lo));
            }
            pool::run(workers, tasks);
        }
        // Barrier: orphan credits must be visible before any traversal
        // reads its credit counters (the serial sub-stage order).
        for s in 0..self.plan.num_shards() {
            let mut scratch = std::mem::take(&mut self.shard_scratch[s]);
            self.apply_shard_credits(&mut scratch);
            apply_delta(&mut self.live_flits, scratch.live_delta);
            scratch.live_delta = 0;
            self.shard_scratch[s] = scratch;
        }
        // Fan-out 2: switch traversal over the same drained id lists.
        {
            let Network {
                routers,
                receivers,
                router_sets,
                shard_scratch,
                plan,
                link_orig,
                link_head,
                link_ids,
                out_link,
                in_upstream,
                killed,
                faults,
                routing,
                topo,
                trace,
                cfg,
                ..
            } = &mut *self;
            let shared = &Shared {
                now,
                link_orig: link_orig.as_slice(),
                link_head: link_head.as_slice(),
                link_ids: link_ids.as_slice(),
                out_link: out_link.as_slice(),
                in_upstream: in_upstream.as_slice(),
                killed: &*killed,
                faults: &*faults,
                routing: &**routing,
                topo: &**topo,
                trace_on: trace.enabled(),
                chans: cfg.inject_channels,
            };
            let node_sizes = || plan.bounds().windows(2).map(|w| (w[1] - w[0]) as usize);
            let routers_split = split_mut(routers, node_sizes());
            let receivers_split = split_mut(receivers, node_sizes());
            let mut tasks = Vec::with_capacity(plan.num_shards());
            for (s, (((routers_s, receivers_s), router_set), scratch)) in routers_split
                .into_iter()
                .zip(receivers_split)
                .zip(router_sets.iter_mut())
                .zip(shard_scratch.iter_mut())
                .enumerate()
            {
                let node_lo = plan.bounds()[s] as usize;
                tasks.push(move || {
                    traverse_task(shared, routers_s, receivers_s, router_set, scratch, node_lo)
                });
            }
            pool::run(workers, tasks);
        }
        // Traverse barrier, in shard order: link pushes (the
        // cross-shard flit handoff, applied in the exact serial
        // order: routers ascending, traversals in emission order),
        // then deliveries with all their side effects, then the
        // deferred credits, then counter deltas. Pushes, deliveries
        // and credits touch disjoint state, so their relative grouping
        // cannot be observed.
        let channel_latency = self.cfg.channel_latency;
        let warmup = self.cfg.warmup;
        for s in 0..self.plan.num_shards() {
            let mut scratch = std::mem::take(&mut self.shard_scratch[s]);
            for i in 0..scratch.push_li.len() {
                let li = scratch.push_li[i] as usize;
                if now.as_u64() >= warmup {
                    self.link_flits[li] += 1;
                }
                self.push_onto_link(
                    li,
                    VcId::new(scratch.push_vc[i]),
                    now + channel_latency,
                    scratch.push_flit[i],
                );
            }
            scratch.push_li.clear();
            scratch.push_vc.clear();
            scratch.push_flit.clear();
            for i in 0..scratch.delivered.len() {
                let m = scratch.delivered[i];
                self.counters.messages_delivered += 1;
                self.counters.payload_flits_delivered += u64::from(m.payload_len);
                if m.corrupt {
                    self.counters.corrupt_payload_delivered += 1;
                }
                self.latency.record(m.created, now);
                self.throughput.record_flits(now, m.payload_len as usize);
                self.trace.emit(|| Event::Deliver {
                    at: now,
                    src: m.src,
                    dst: m.dst,
                    message: m.id,
                    attempts: m.attempts,
                    latency: now.saturating_since(m.created),
                });
                if let Some((sn, sc)) = self.source_of(m.id) {
                    self.worm_sources[m.id.as_u64() as usize] = SOURCE_GONE;
                    self.injector_on_delivered(sn, sc, m.id);
                }
                if self.record_deliveries {
                    self.delivery_log.push(m);
                }
            }
            scratch.delivered.clear();
            self.apply_shard_credits(&mut scratch);
            self.apply_shard_deltas(now, &mut scratch);
            self.shard_scratch[s] = scratch;
        }
        // The serial stepper emits every finished stall streak after
        // every delivery, so the streak events drain in a second pass.
        for s in 0..self.plan.num_shards() {
            let mut scratch = std::mem::take(&mut self.shard_scratch[s]);
            for ev in scratch.streak_events.drain(..) {
                self.trace.emit(|| ev);
            }
            self.shard_scratch[s] = scratch;
        }
    }

    // --------------------------------------------------------------
    // Barrier helpers
    // --------------------------------------------------------------

    /// Commits a shard's buffered upstream credit returns. Credits
    /// are commutative increments, so shard order equals the serial
    /// interleaving.
    fn apply_shard_credits(&mut self, scratch: &mut ShardScratch) {
        for &(up_node, up_out, vc) in &scratch.credits {
            self.routers[up_node as usize].add_credit(up_out, vc);
        }
        scratch.credits.clear();
    }

    /// Commits a shard's counter deltas, progress flag and buffered
    /// trace events.
    fn apply_shard_deltas(&mut self, now: Cycle, scratch: &mut ShardScratch) {
        self.counters.merge(&scratch.counters);
        scratch.counters = NetCounters::default();
        apply_delta(&mut self.live_flits, scratch.live_delta);
        scratch.live_delta = 0;
        apply_delta(&mut self.undrained_injectors, scratch.undrained_delta);
        scratch.undrained_delta = 0;
        if scratch.progress {
            self.last_progress = now;
            scratch.progress = false;
        }
        for ev in scratch.events.drain(..) {
            self.trace.emit(|| ev);
        }
    }
}

/// Arrivals for one shard: the serial `scan_link_arrivals` specialized
/// to the fault-free/non-detecting gate (no RNG draw, no kill, no
/// trace event), walking the shard's links ascending.
#[allow(clippy::too_many_arguments)]
fn arrivals_task(
    shared: &Shared<'_>,
    routers_s: &mut [Router],
    links_s: &mut [LinkState],
    wake_s: &mut [Cycle],
    link_set: &mut ActiveSet,
    router_set: &mut ActiveSet,
    scratch: &mut ShardScratch,
    node_lo: usize,
    links_lo: usize,
) {
    let now = shared.now;
    let mut ids = std::mem::take(&mut scratch.ids);
    ids.clear();
    link_set.drain_sorted_into(&mut ids);
    for &pi32 in &ids {
        let pi = pi32 as usize;
        let local = pi - links_lo;
        if links_s[local].occupied == 0 {
            continue; // purged empty since it was armed
        }
        if wake_s[local] > now {
            link_set.insert(pi32);
            continue;
        }
        let li = shared.link_orig[pi] as usize;
        let (dst_node, dst_port) = shared.link_head[li];
        let dst_local = dst_node - node_lo;
        let link_dead = shared.faults.is_dead(shared.link_ids[li]);
        for v in 0..links_s[local].lanes.len() {
            let vc = VcId::from_index(v);
            loop {
                let killed = match links_s[local].lanes[v].front() {
                    Some(&(arrive, ref flit)) if arrive <= now => {
                        let killed = shared.killed.contains(flit.worm);
                        if !killed && routers_s[dst_local].vc_is_full(dst_port, vc) {
                            break;
                        }
                        killed
                    }
                    _ => break,
                };
                let Some((_, mut flit)) = links_s[local].lanes[v].pop_front() else {
                    break; // unreachable: front() just succeeded
                };
                links_s[local].occupied -= 1;
                flit.hops = flit.hops.saturating_add(1);
                if link_dead {
                    // Dead link, non-detecting protocol (the gate):
                    // the flit is corrupted and carried on — the
                    // integrity-violation baseline.
                    if !flit.corrupted {
                        scratch.counters.flits_corrupted += 1;
                    }
                    flit.corrupted = true;
                }
                if killed {
                    scratch.counters.flits_dropped_killed += 1;
                    scratch.live_delta -= 1;
                    shared.buffer_credit(scratch, dst_node, dst_port, vc);
                    continue;
                }
                routers_s[dst_local].accept(now, dst_port, vc, flit);
                router_set.insert(crate::network::idx32(dst_node));
                scratch.progress = true;
            }
        }
        if links_s[local].occupied > 0 {
            if let Some(wake) = links_s[local]
                .lanes
                .iter()
                .filter_map(|lane| lane.front().map(|&(arrive, _)| arrive))
                .min()
            {
                wake_s[local] = wake;
            }
            link_set.insert(pi32);
        }
    }
    scratch.ids = ids;
}

/// Injection for one shard: the serial `step_injector_one` with the
/// source-timeout kill path inlined (a source kill only touches the
/// worm's own node — flush at the inject port releases no upstream
/// credit — plus the buffered registry insert and forward token).
fn injection_task(
    shared: &Shared<'_>,
    routers_s: &mut [Router],
    injectors_s: &mut [Vec<Injector>],
    receivers_s: &mut [Receiver],
    injector_set: &mut ActiveSet,
    router_set: &mut ActiveSet,
    scratch: &mut ShardScratch,
    node_lo: usize,
) {
    let now = shared.now;
    let chans = shared.chans;
    let mut ids = std::mem::take(&mut scratch.ids);
    ids.clear();
    injector_set.drain_sorted_into(&mut ids);
    for &id in &ids {
        let (n, c) = (id as usize / chans, id as usize % chans);
        let local = n - node_lo;
        let out = injectors_s[local][c].step(now, &mut routers_s[local]);
        if out.injected_flit {
            scratch.progress = true;
            scratch.live_delta += 1;
            router_set.insert(crate::network::idx32(n));
            if out.injected_pad {
                scratch.counters.pad_flits_injected += 1;
            } else {
                scratch.counters.payload_flits_injected += 1;
            }
        }
        if out.restarted {
            scratch.counters.retransmissions += 1;
        }
        if shared.trace_on {
            if let Some((worm, dst)) = out.started {
                scratch.events.push(Event::Inject {
                    at: now,
                    src: NodeId::from_index(n),
                    dst,
                    message: worm.message,
                    attempt: worm.attempt,
                });
            }
            if let Some(worm) = out.committed {
                scratch.events.push(Event::Commit {
                    at: now,
                    src: NodeId::from_index(n),
                    message: worm.message,
                    attempt: worm.attempt,
                });
            }
        }
        if let Some(worm) = out.kill {
            scratch.counters.kills_source_timeout += 1;
            scratch.kills.push(worm);
            if shared.trace_on {
                scratch.events.push(Event::Kill {
                    at: now,
                    node: NodeId::from_index(n),
                    message: worm.message,
                    attempt: worm.attempt,
                    cause: KillCause::SourceTimeout,
                });
            }
            // `flush_and_credit` at an inject port: no upstream
            // credits, no feeding link to purge.
            let port = routers_s[local].inject_port(c);
            let res = routers_s[local].flush_worm(port, VcId::new(0), worm);
            scratch.live_delta -= res.flushed as i64;
            debug_assert_eq!(routers_s[local].port_kind(port), PortKind::Inject);
            match res.released {
                Some(RouteTarget::Link { port: op, vc: ov }) => {
                    if let Some(li) = shared.out_link[n][op.index()] {
                        let (next_node, next_port) = shared.link_head[li];
                        scratch.tokens.push(Token {
                            worm,
                            node: next_node,
                            port: next_port,
                            vc: ov,
                        });
                    }
                }
                Some(RouteTarget::Eject { .. }) => receivers_s[local].discard(worm),
                None => {}
            }
            // `injector_on_killed` with the undrained count buffered.
            let was_drained = injectors_s[local][c].is_drained();
            let retx = injectors_s[local][c].on_killed(now, worm);
            match (was_drained, injectors_s[local][c].is_drained()) {
                (true, false) => scratch.undrained_delta += 1,
                (false, true) => scratch.undrained_delta -= 1,
                _ => {}
            }
            injector_set.insert(id);
            if shared.trace_on {
                if let Some((attempt, resume_at)) = retx {
                    scratch.events.push(Event::RetransmitScheduled {
                        at: now,
                        message: worm.message,
                        attempt,
                        resume_at,
                    });
                }
            }
        }
        if injectors_s[local][c].has_step_work() {
            injector_set.insert(id);
        }
    }
    scratch.ids = ids;
}

/// Routing/VC-allocation plus orphan-credit collection for one shard.
/// The drained router ids stay in `scratch.ids` for the traverse
/// fan-out (the serial phase drains the set once for all four
/// sub-stages).
fn route_task(
    shared: &Shared<'_>,
    routers_s: &mut [Router],
    router_set: &mut ActiveSet,
    scratch: &mut ShardScratch,
    node_lo: usize,
) {
    let now = shared.now;
    let mut ids = std::mem::take(&mut scratch.ids);
    ids.clear();
    router_set.drain_sorted_into(&mut ids);
    let is_killed = |w: WormId| shared.killed.contains(w);
    for &n in &ids {
        let local = n as usize - node_lo;
        let orphans = routers_s[local].route_and_allocate(now, shared.routing, shared.topo, &is_killed);
        scratch.live_delta -= orphans as i64;
    }
    for &n in &ids {
        let local = n as usize - node_lo;
        let orphans = routers_s[local].take_orphan_credits();
        for (port, vc) in orphans {
            shared.buffer_credit(scratch, n as usize, port, vc);
        }
    }
    scratch.ids = ids;
}

/// Switch traversal for one shard, over the ids drained by
/// [`route_task`]: departing flits buffer into the struct-of-arrays
/// push buffer (links may belong to another shard) or deliver into the
/// shard's own receivers; upstream credits buffer per the
/// credit-return latency; finished stall streaks buffer as events.
fn traverse_task(
    shared: &Shared<'_>,
    routers_s: &mut [Router],
    receivers_s: &mut [Receiver],
    router_set: &mut ActiveSet,
    scratch: &mut ShardScratch,
    node_lo: usize,
) {
    let now = shared.now;
    let mut ids = std::mem::take(&mut scratch.ids);
    let mut traversals = std::mem::take(&mut scratch.traversals);
    let is_killed = |w: WormId| shared.killed.contains(w);
    for &n in &ids {
        let local = n as usize - node_lo;
        traversals.clear();
        routers_s[local].traverse_into(now, &is_killed, &mut traversals);
        for k in 0..traversals.len() {
            let t = traversals[k];
            scratch.progress = true;
            if routers_s[local].port_kind(t.from_port) == PortKind::Node {
                shared.buffer_credit(scratch, n as usize, t.from_port, t.from_vc);
            }
            match t.target {
                RouteTarget::Link { port, vc } => {
                    let Some(li) = shared.out_link[n as usize][port.index()] else {
                        debug_assert!(false, "route to disconnected port");
                        continue;
                    };
                    scratch.push_li.push(crate::network::idx32(li));
                    scratch.push_vc.push(vc.as_u8());
                    scratch.push_flit.push(t.flit);
                }
                RouteTarget::Eject { .. } => {
                    scratch.live_delta -= 1;
                    if shared.killed.contains(t.flit.worm) {
                        scratch.counters.flits_dropped_killed += 1;
                        receivers_s[local].discard(t.flit.worm);
                        continue;
                    }
                    let delivered = receivers_s[local].on_flit(now, t.flit);
                    scratch.delivered.extend(delivered);
                }
            }
        }
    }
    if shared.trace_on {
        let mut streaks = std::mem::take(&mut scratch.streaks);
        for &n in &ids {
            let local = n as usize - node_lo;
            streaks.clear();
            routers_s[local].drain_streaks_into(&mut streaks);
            for st in &streaks {
                if let Some(li) = shared.out_link[n as usize][st.port.index()] {
                    scratch.streak_events.push(Event::LinkStall {
                        at: st.since,
                        link: shared.link_ids[li],
                        cause: st.cause,
                        cycles: st.cycles,
                    });
                }
            }
        }
        scratch.streaks = streaks;
    }
    for &n in &ids {
        let local = n as usize - node_lo;
        let r = &routers_s[local];
        if r.total_occupancy() > 0 || r.has_open_streaks() {
            router_set.insert(n);
        }
    }
    ids.clear();
    scratch.ids = ids;
    scratch.traversals = traversals;
}
