//! The model checker's view of the protocol: a thin transition API
//! over the *real* [`Network`] (no re-model), plus a canonical state
//! encoding and the safety invariants `cr-check` evaluates at every
//! state.
//!
//! # Why a child module of `network`
//!
//! The encoder must read router buffers, link lanes, teardown tokens
//! and the killed registry — private simulation state that must stay
//! private (tests and tools should not be able to mutate or depend on
//! it). Declaring this module inside `network.rs` (the same trick the
//! sharded stepper uses) grants field access without widening any
//! visibility.
//!
//! # Canonical encoding
//!
//! Exhaustive search lives or dies on state merging: two interleavings
//! reaching "the same" protocol state must hash identically. Raw
//! simulator state does not cooperate — message ids grow monotonically,
//! cycle counters advance, and the killed registry stores entries in
//! insertion order. The encoder therefore normalizes:
//!
//! * **Identity**: every [`MessageId`] is replaced by its *flow label*
//!   `(src, dst, msg_seq)`, which names the same logical message in
//!   every interleaving. Worm instances add the retry `attempt`.
//! * **Time**: absolute cycles never enter the encoding. Deadlines and
//!   ages are encoded relative to `now`; the only absolute residue is
//!   `now % 256`, the phase of the registry-prune cadence
//!   (`phase_bookkeeping` prunes on multiples of 256, so two states
//!   differing only in that phase can genuinely diverge).
//! * **Storage**: hash-map iteration order (the killed registry) is
//!   sorted by flow label; everything else is walked in fixed
//!   structural order.
//!
//! Excluded on purpose: metrics, counters, trace state, per-link
//! utilization, churn report trackers (all observers), and the dense
//! id/sequence allocators (`next_message_id`, `seq_counters`) which
//! are a function of the set of injections already fired — a fact the
//! checker already keys on.
//!
//! # Example
//!
//! ```
//! use cr_core::check_api::{CheckNet, ProtocolStep};
//! use cr_core::{NetworkBuilder, ProtocolKind, RoutingKind};
//! use cr_sim::NodeId;
//! use cr_topology::KAryNCube;
//!
//! let net = NetworkBuilder::new(KAryNCube::mesh(2, 1))
//!     .routing(RoutingKind::Adaptive { vcs: 1 })
//!     .protocol(ProtocolKind::Cr)
//!     .shards(1)
//!     .build();
//! let mut cn = CheckNet::new(net);
//! cn.inject(NodeId::new(0), NodeId::new(1), 2);
//! for _ in 0..500 {
//!     if cn.is_quiescent() {
//!         break;
//!     }
//!     cn.tick();
//! }
//! cn.check_invariants().expect("protocol invariant");
//! assert_eq!(cn.deliveries().values().map(|d| d.delivered).sum::<u64>(), 1);
//! ```

use std::collections::BTreeMap;

use crate::config::NetworkConfig;
use cr_faults::FaultModel;
use cr_router::{Flit, FlitKind, RouteTarget, RoutingFunction};
use cr_sim::{Cycle, LinkId, MessageId, NodeId, PortId, VcId};
use cr_topology::Topology;

use super::{Network, SOURCE_GONE};

/// Interleaving-independent name of a logical message: `(src, dst,
/// per-flow sequence number)`. Unlike [`MessageId`] (dense, assigned
/// in injection order) the flow label of a given injection is the same
/// in every interleaving, so canonical encodings built on it merge.
pub type FlowKey = (u32, u32, u64);

/// How often (and how badly) one logical message was delivered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryCount {
    /// Completed deliveries to the destination's processor interface.
    /// Exactly-once means this never exceeds 1.
    pub delivered: u64,
    /// Deliveries whose payload carried undetected corruption. Must
    /// stay 0 under FCR (which detects and kills corrupt worms).
    pub corrupt: u64,
}

/// One transition step of the protocol, as the model checker drives
/// it: environment actions (inject, kill, revive) that do not advance
/// time, one-cycle ticks, and the predicates/encodings the search
/// needs. Implemented by [`CheckNet`] over the real simulator;
/// conformance tests may implement it over other backends.
pub trait ProtocolStep {
    /// Current simulation time.
    fn now(&self) -> Cycle;

    /// Advances the network exactly one cycle.
    fn tick(&mut self);

    /// Queues a message for transmission (an environment action: takes
    /// effect this cycle, consumes no time itself) and returns its
    /// flow label.
    fn inject(&mut self, src: NodeId, dst: NodeId, payload_len: u32) -> FlowKey;

    /// Kills `link` effective immediately — equivalent to a
    /// [`cr_faults::ChurnSchedule`] kill firing at the top of the next
    /// [`ProtocolStep::tick`], since in-flight flits are judged at
    /// arrival time against the live fault model either way.
    fn kill_link_now(&mut self, link: LinkId);

    /// Revives `link` effective immediately (see
    /// [`ProtocolStep::kill_link_now`]).
    fn revive_link_now(&mut self, link: LinkId);

    /// All traffic drained: nothing buffered, in flight, or pending in
    /// any injector.
    fn is_quiescent(&self) -> bool;

    /// `true` once the deadlock watchdog has fired.
    fn is_deadlocked(&self) -> bool;

    /// Appends the canonical state encoding (see the module docs) to
    /// `out`.
    fn encode_state(&self, out: &mut Vec<u8>);

    /// Evaluates every safety invariant; `Err` describes the first
    /// violation found.
    fn check_invariants(&self) -> Result<(), String>;

    /// Per-message delivery outcomes observed so far.
    fn deliveries(&self) -> &BTreeMap<FlowKey, DeliveryCount>;
}

/// A [`Network`] wrapped for model checking: deterministic dense
/// stepper forced on, deliveries recorded, and every [`MessageId`] the
/// checker injects tracked under its interleaving-independent
/// [`FlowKey`].
pub struct CheckNet {
    net: Network,
    /// Flow label of every message injected through
    /// [`ProtocolStep::inject`], mirroring `send_message`'s
    /// deterministic `(flow, seq)` assignment.
    labels: BTreeMap<MessageId, FlowKey>,
    /// Delivery outcomes, accumulated from the network's delivery log
    /// after every tick.
    delivered: BTreeMap<FlowKey, DeliveryCount>,
}

/// Assembles a [`Network`] from explicit parts — the entry point for
/// checker configurations whose routing function is *not* one of the
/// [`RoutingKind`](crate::RoutingKind) presets (the `--mutate` knobs
/// plant deliberately unsound routing functions here). No traffic
/// sources are attached and the serial stepper is selected; `cfg`
/// still describes the protocol, buffering and (for padding budgets)
/// the nominal routing kind.
pub fn assemble_with_routing(
    topo: Box<dyn Topology>,
    cfg: NetworkConfig,
    routing: Box<dyn RoutingFunction>,
    faults: FaultModel,
) -> Network {
    Network::assemble(topo, cfg, routing, faults, Vec::new(), 0.0, 1)
}

impl CheckNet {
    /// Wraps `net` for checking.
    ///
    /// # Panics
    ///
    /// Panics if `net` uses path-wide stall detection (its
    /// `last_progress` timestamps are deliberately outside the
    /// canonical encoding) or was built with more than one shard (the
    /// checker replays must be strictly serial).
    pub fn new(mut net: Network) -> CheckNet {
        assert!(
            net.cfg.path_wide_threshold.is_none(),
            "CheckNet does not support path-wide stall detection"
        );
        assert_eq!(net.num_shards(), 1, "CheckNet requires the serial stepper");
        net.set_reference_stepper(true);
        net.set_record_deliveries(true);
        CheckNet {
            net,
            labels: BTreeMap::new(),
            delivered: BTreeMap::new(),
        }
    }

    /// Read access to the wrapped network (reports, counters,
    /// configuration).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Flow label of `message`, or an all-max sentinel for ids the
    /// checker never injected (none exist in a well-formed run).
    fn label(&self, message: MessageId) -> FlowKey {
        self.labels
            .get(&message)
            .copied()
            .unwrap_or((u32::MAX, u32::MAX, u64::MAX))
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_key(out: &mut Vec<u8>, k: FlowKey) {
    put_u32(out, k.0);
    put_u32(out, k.1);
    put_u64(out, k.2);
}

/// Option<(port, vc)> as tag + payload.
fn put_owner(out: &mut Vec<u8>, o: Option<(PortId, VcId)>) {
    match o {
        None => out.push(0),
        Some((p, v)) => {
            out.push(1);
            put_u32(out, u32::from(p.as_u16()));
            out.push(v.as_u8());
        }
    }
}

fn put_target(out: &mut Vec<u8>, t: Option<RouteTarget>) {
    match t {
        None => out.push(0),
        Some(RouteTarget::Link { port, vc }) => {
            out.push(1);
            put_u32(out, u32::from(port.as_u16()));
            out.push(vc.as_u8());
        }
        Some(RouteTarget::Eject { port }) => {
            out.push(2);
            put_u64(out, port as u64);
        }
    }
}

impl ProtocolStep for CheckNet {
    fn now(&self) -> Cycle {
        self.net.now()
    }

    fn tick(&mut self) {
        self.net.step();
        for d in self.net.take_delivery_log() {
            let key = (d.src.as_u32(), d.dst.as_u32(), d.msg_seq);
            let e = self.delivered.entry(key).or_default();
            e.delivered += 1;
            if d.corrupt {
                e.corrupt += 1;
            }
        }
    }

    fn inject(&mut self, src: NodeId, dst: NodeId, payload_len: u32) -> FlowKey {
        // Mirror send_message's flow/sequence assignment *before* the
        // call increments the counter.
        let flow = src.index() * self.net.topo.num_nodes() + dst.index();
        let msg_seq = self.net.seq_counters[flow];
        let id = self.net.send_message(src, dst, payload_len);
        let key = (src.as_u32(), dst.as_u32(), msg_seq);
        self.labels.insert(id, key);
        key
    }

    fn kill_link_now(&mut self, link: LinkId) {
        // The live-churn kill path (`apply_churn`) minus its
        // metrics-only work (drain trackers, trace events).
        self.net.faults_mut().kill_link(link);
        let li = self.net.link_by_id[link.index()] as usize;
        assert_ne!(li, u32::MAX as usize, "unknown link id");
        let (dst, dst_port) = self.net.link_head[li];
        if let Some((src, src_port)) = self.net.in_upstream[dst][dst_port.index()] {
            self.net.routers[src].set_dead_out(src_port);
        }
    }

    fn revive_link_now(&mut self, link: LinkId) {
        self.net.faults_mut().revive_link(link);
        let li = self.net.link_by_id[link.index()] as usize;
        assert_ne!(li, u32::MAX as usize, "unknown link id");
        let (dst, dst_port) = self.net.link_head[li];
        if let Some((src, src_port)) = self.net.in_upstream[dst][dst_port.index()] {
            self.net.routers[src].clear_dead_out(src_port);
            self.net.arm_router(src);
        }
        self.net.arm_router(dst);
    }

    fn is_quiescent(&self) -> bool {
        self.net.is_quiescent()
    }

    fn is_deadlocked(&self) -> bool {
        self.net.is_deadlocked()
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        let net = &self.net;
        let now = net.now;
        let num_vcs = net.routing.num_vcs();

        let put_flit = |out: &mut Vec<u8>, f: &Flit| {
            put_key(out, self.label(f.worm.message));
            put_u32(out, f.worm.attempt);
            out.push(match f.kind {
                FlitKind::Head => 0,
                FlitKind::Body => 1,
                FlitKind::Pad => 2,
                FlitKind::Tail => 3,
            });
            put_u32(out, f.seq);
            put_u32(out, f.worm_len);
            put_u32(out, f.payload_len);
            out.push(u8::from(f.escaped));
            put_u32(out, u32::from(f.hops));
            out.push(u8::from(f.corrupted));
            // Excluded: src/dst/msg_seq (redundant with the flow
            // label) and the creation cycle (latency bookkeeping only).
        };

        // --- global scalars -------------------------------------------------
        // cr-lint: allow(integer-narrowing, reason = "value is masked to one byte by the % 256")
        out.push((now.as_u64() % 256) as u8);
        out.push(u8::from(net.deadlocked));
        put_u64(out, net.live_flits as u64);
        put_u64(out, net.undrained_injectors as u64);
        put_u64(out, now.saturating_since(net.last_progress));
        put_u64(out, net.scheduled.len() as u64);

        // --- routers --------------------------------------------------------
        for r in &net.routers {
            let rc = *r.config();
            for p in 0..rc.num_node_ports + rc.num_inject {
                let port = PortId::from_index(p);
                // Injection ports have a single VC.
                let vcs = if p < rc.num_node_ports { num_vcs } else { 1 };
                for v in 0..vcs {
                    let vc = VcId::from_index(v);
                    put_u64(out, r.occupancy(port, vc) as u64);
                    let mut i = 0;
                    while let Some(f) = r.flit_at(port, vc, i) {
                        put_flit(out, f);
                        i += 1;
                    }
                    put_target(out, r.route_of(port, vc));
                    match r.worm_of(port, vc) {
                        None => out.push(0),
                        Some(w) => {
                            out.push(1);
                            put_key(out, self.label(w.message));
                            put_u32(out, w.attempt);
                        }
                    }
                    // InputVc::last_progress is excluded: it only
                    // drives path-wide detection, which CheckNet
                    // rejects at construction.
                }
            }
            for p in 0..rc.num_node_ports {
                let port = PortId::from_index(p);
                for v in 0..num_vcs {
                    let vc = VcId::from_index(v);
                    put_u64(out, r.credits(port, vc) as u64);
                    put_owner(out, r.output_owner(port, vc));
                }
                out.push(u8::from(r.is_dead_out(port)));
            }
            for e in 0..rc.num_eject {
                put_owner(out, r.eject_owner(e));
            }
            put_u64(out, r.rng_words_consumed());
        }

        // --- links ----------------------------------------------------------
        // Walked in original index order; state lives at the permuted
        // slot (identity under the serial plan CheckNet requires).
        for li in 0..net.links.len() {
            let pi = net.link_perm[li] as usize;
            for lane in &net.links[pi].lanes {
                put_u64(out, lane.len() as u64);
                for &(arrive, ref f) in lane {
                    // Relative due time; past-due flits (parked in the
                    // channel latches awaiting a buffer slot) all
                    // collapse to 0, which is exact: arrival handling
                    // only asks "due yet?".
                    put_u64(out, arrive.saturating_since(now));
                    put_flit(out, f);
                }
            }
        }

        // --- kill machinery -------------------------------------------------
        let mut killed: Vec<(FlowKey, u32, u64)> = net
            .killed
            .entries()
            .into_iter()
            .map(|(w, at)| (self.label(w.message), w.attempt, now.saturating_since(at)))
            .collect();
        killed.sort_unstable();
        put_u64(out, killed.len() as u64);
        for (k, attempt, age) in killed {
            put_key(out, k);
            put_u32(out, attempt);
            put_u64(out, age);
        }
        for tokens in [&net.fwd_tokens, &net.bwd_tokens] {
            put_u64(out, tokens.len() as u64);
            for t in tokens.iter() {
                put_key(out, self.label(t.worm.message));
                put_u32(out, t.worm.attempt);
                put_u64(out, t.node as u64);
                put_u32(out, u32::from(t.port.as_u16()));
                out.push(t.vc.as_u8());
            }
        }

        // --- per-message protocol state ------------------------------------
        // worm_sources and the checker-side delivery tally, iterated
        // in flow-label order so the encoding is id-free.
        let mut by_label: Vec<(FlowKey, MessageId)> =
            self.labels.iter().map(|(&m, &k)| (k, m)).collect();
        by_label.sort_unstable();
        put_u64(out, by_label.len() as u64);
        for (k, m) in by_label {
            put_key(out, k);
            let src = net
                .worm_sources
                .get(m.as_u64() as usize)
                .copied()
                .unwrap_or(SOURCE_GONE);
            put_u32(out, src);
            let d = self.delivered.get(&k).copied().unwrap_or_default();
            put_u64(out, d.delivered);
            put_u64(out, d.corrupt);
        }

        // --- endpoints ------------------------------------------------------
        for chans in &net.injectors {
            for inj in chans {
                inj.encode_state(now, out);
            }
        }
        let labels = &self.labels;
        let lookup = move |m: MessageId| {
            labels
                .get(&m)
                .copied()
                .unwrap_or((u32::MAX, u32::MAX, u64::MAX))
        };
        for rx in &net.receivers {
            rx.encode_state(now, &lookup, out);
        }

        // --- fault model ----------------------------------------------------
        for &id in net.link_ids.iter() {
            out.push(u8::from(net.faults.is_dead(id)));
        }
        put_u64(out, net.fault_rng.words_consumed());
    }

    fn check_invariants(&self) -> Result<(), String> {
        let net = &self.net;
        let num_vcs = net.routing.num_vcs();
        let depth = net.cfg.buffer_depth + net.cfg.channel_latency as usize;

        // Credit conservation: for every link and VC, upstream credits
        // plus flits on the wire plus flits buffered downstream equals
        // the fixed buffering budget. A leak (sum below budget) bleeds
        // capacity forever; a surplus would overflow buffers.
        for li in 0..net.links.len() {
            let (dst, dst_port) = net.link_head[li];
            let Some((src, src_port)) = net.in_upstream[dst][dst_port.index()] else {
                continue;
            };
            let pi = net.link_perm[li] as usize;
            for v in 0..num_vcs {
                let vc = VcId::from_index(v);
                let credits = net.routers[src].credits(src_port, vc);
                let wire = net.links[pi].lanes[v].len();
                let buffered = net.routers[dst].occupancy(dst_port, vc);
                if credits + wire + buffered != depth {
                    return Err(format!(
                        "credit leak on link {li} vc {v}: credits {credits} + wire {wire} \
                         + buffered {buffered} != {depth} (n{src} p{} -> n{dst} p{})",
                        src_port.index(),
                        dst_port.index(),
                    ));
                }
            }
        }

        // Buffer bounds.
        for (n, r) in net.routers.iter().enumerate() {
            let rc = *r.config();
            for p in 0..rc.num_node_ports + rc.num_inject {
                let port = PortId::from_index(p);
                let (vcs, cap) = if p < rc.num_node_ports {
                    (num_vcs, rc.buffer_depth)
                } else {
                    (1, rc.inject_depth)
                };
                for v in 0..vcs {
                    let occ = r.occupancy(port, VcId::from_index(v));
                    if occ > cap {
                        return Err(format!(
                            "buffer overflow at n{n} p{p} vc {v}: {occ} > {cap}"
                        ));
                    }
                }
            }
        }

        // Exactly-once (the "at most once" half — the "at least once"
        // half is a liveness property the checker proves by reaching
        // quiescence on every path).
        for (k, d) in &self.delivered {
            if d.delivered > 1 {
                return Err(format!(
                    "duplicate delivery of ({}, {}, {}): {} copies",
                    k.0, k.1, k.2, d.delivered
                ));
            }
            if d.corrupt > 0 && net.cfg.protocol.detects_faults() {
                return Err(format!(
                    "corrupt payload delivered under FCR for ({}, {}, {})",
                    k.0, k.1, k.2
                ));
            }
        }

        Ok(())
    }

    fn deliveries(&self) -> &BTreeMap<FlowKey, DeliveryCount> {
        &self.delivered
    }
}
