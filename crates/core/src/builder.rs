//! Fluent construction of a [`Network`].

use crate::config::{NetworkConfig, ProtocolKind, RoutingKind};
use crate::network::Network;
use crate::retransmit::RetransmitScheme;
use cr_faults::FaultModel;
use cr_sim::{NodeId, SimRng};
use cr_topology::{KAryNCube, Topology, TopologyKind};
use cr_traffic::{LengthDistribution, TrafficPattern, TrafficSource};

/// Builder for [`Network`] (non-consuming, per the Rust API
/// guidelines' builder pattern).
///
/// # Examples
///
/// The paper's canonical configuration — an 8×8 torus running CR over
/// minimal-adaptive routing with 16-flit messages:
///
/// ```
/// use cr_core::{NetworkBuilder, ProtocolKind, RoutingKind};
/// use cr_topology::KAryNCube;
/// use cr_traffic::{LengthDistribution, TrafficPattern};
///
/// let mut net = NetworkBuilder::new(KAryNCube::torus(8, 2))
///     .routing(RoutingKind::Adaptive { vcs: 1 })
///     .protocol(ProtocolKind::Cr)
///     .buffer_depth(2)
///     .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.2)
///     .seed(42)
///     .build();
/// let report = net.run(5_000);
/// assert!(!report.deadlocked);
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    topo: Box<dyn Topology>,
    cfg: NetworkConfig,
    faults: FaultModel,
    traffic: Option<(TrafficPattern, LengthDistribution, f64)>,
    shards: Option<usize>,
}

impl NetworkBuilder {
    /// Starts a builder over `topology`.
    pub fn new<T: Topology + 'static>(topology: T) -> Self {
        Self::new_boxed(Box::new(topology))
    }

    /// Starts a builder over an already-boxed topology (the form
    /// [`TopologyKind::build`] produces).
    pub fn new_boxed(topology: Box<dyn Topology>) -> Self {
        NetworkBuilder {
            topo: topology,
            cfg: NetworkConfig::default(),
            faults: FaultModel::new(),
            traffic: None,
            shards: None,
        }
    }

    /// Number of spatial shards the active stepper partitions the
    /// fabric into (see DESIGN.md §12). `1` (the default) is the
    /// serial stepper; any value is byte-identical to it. When this
    /// knob is never called, the `CR_SHARDS` environment variable is
    /// consulted, then serial. Deliberately *not* part of
    /// [`NetworkConfig`]: shard count is an execution strategy, not an
    /// experiment parameter, and must never leak into printed results.
    pub fn shards(&mut self, shards: usize) -> &mut Self {
        self.shards = Some(shards);
        self
    }

    /// Starts a builder over the topology described by `kind` — the
    /// entry point for configs round-tripped through JSON.
    pub fn from_kind(kind: &TopologyKind) -> Self {
        Self::new_boxed(kind.build())
    }

    /// The paper's default testbed: an 8-ary 2-cube torus.
    pub fn paper_torus() -> Self {
        Self::new(KAryNCube::torus(8, 2))
    }

    /// Selects the routing algorithm.
    pub fn routing(&mut self, routing: RoutingKind) -> &mut Self {
        self.cfg.routing = routing;
        self
    }

    /// Selects the end-to-end protocol.
    pub fn protocol(&mut self, protocol: ProtocolKind) -> &mut Self {
        self.cfg.protocol = protocol;
        self
    }

    /// Flit-buffer depth per input virtual channel.
    pub fn buffer_depth(&mut self, depth: usize) -> &mut Self {
        self.cfg.buffer_depth = depth;
        self
    }

    /// Channel pipeline depth in cycles (network "depth" knob for the
    /// padding-overhead experiment).
    pub fn channel_latency(&mut self, cycles: u64) -> &mut Self {
        self.cfg.channel_latency = cycles;
        self
    }

    /// Number of injection ("source") channels per node.
    pub fn inject_channels(&mut self, n: usize) -> &mut Self {
        self.cfg.inject_channels = n;
        self
    }

    /// Injection FIFO depth.
    pub fn inject_depth(&mut self, depth: usize) -> &mut Self {
        self.cfg.inject_depth = depth;
        self
    }

    /// Number of ejection ("sink") channels per node.
    pub fn eject_channels(&mut self, n: usize) -> &mut Self {
        self.cfg.eject_channels = n;
        self
    }

    /// Source timeout in cycles (default: message length × VCs).
    pub fn timeout(&mut self, cycles: u64) -> &mut Self {
        self.cfg.timeout = Some(cycles);
        self
    }

    /// Retransmission gap policy.
    pub fn retransmit(&mut self, scheme: RetransmitScheme) -> &mut Self {
        self.cfg.retransmit = scheme;
        self
    }

    /// Enables the path-wide kill scheme with the given local stall
    /// threshold (the comparison experiment; normally off).
    pub fn path_wide(&mut self, threshold: u64) -> &mut Self {
        self.cfg.path_wide_threshold = Some(threshold);
        self
    }

    /// Warmup cycles excluded from measurements.
    pub fn warmup(&mut self, cycles: u64) -> &mut Self {
        self.cfg.warmup = cycles;
        self
    }

    /// Master random seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.cfg.seed = seed;
        self
    }

    /// Cycles without progress before declaring deadlock.
    pub fn deadlock_threshold(&mut self, cycles: u64) -> &mut Self {
        self.cfg.deadlock_threshold = cycles;
        self
    }

    /// Enables structured event tracing with a ring buffer of
    /// `capacity` events (see `cr_sim::trace`). Off by default; when
    /// off, the trace layer costs one branch per would-be emit and
    /// reports are byte-identical.
    pub fn trace(&mut self, capacity: usize) -> &mut Self {
        self.cfg.trace_capacity = Some(capacity);
        self
    }

    /// Applies research ablation switches (see [`crate::Ablations`]).
    pub fn ablations(&mut self, ablations: crate::Ablations) -> &mut Self {
        self.cfg.ablations = ablations;
        self
    }

    /// Installs a fault model.
    pub fn faults(&mut self, faults: FaultModel) -> &mut Self {
        self.faults = faults;
        self
    }

    /// Installs a live churn schedule (kill/revive events applied at
    /// cycle boundaries; see [`cr_faults::ChurnSchedule`]). Composes
    /// with [`NetworkBuilder::faults`]: call it after, or the new
    /// fault model replaces the schedule too.
    pub fn churn(&mut self, schedule: cr_faults::ChurnSchedule) -> &mut Self {
        self.faults.set_churn(schedule);
        self
    }

    /// Attaches open-loop Bernoulli traffic: `load` flits per node per
    /// cycle, destinations from `pattern`, lengths from `lengths`.
    pub fn traffic(
        &mut self,
        pattern: TrafficPattern,
        lengths: LengthDistribution,
        load: f64,
    ) -> &mut Self {
        self.traffic = Some((pattern, lengths, load));
        self
    }

    /// Builds the network.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent: dimension-order
    /// routing on a topology without it, an invalid resource
    /// configuration, or traffic whose pattern needs a power-of-two
    /// node count on an incompatible topology.
    pub fn build(&mut self) -> Network {
        self.cfg.validate();
        if self.cfg.routing.needs_dimension_order() {
            assert!(
                self.topo.supports_dimension_order(),
                "{} does not support dimension-order routing",
                self.topo.label()
            );
        }
        if self.cfg.routing == RoutingKind::PlanarAdaptive {
            assert!(
                self.topo.max_ports() <= 4,
                "the planar-adaptive implementation covers 2-D meshes only"
            );
        }
        if self.cfg.protocol == ProtocolKind::Baseline {
            assert!(
                self.cfg.path_wide_threshold.is_none(),
                "path-wide kills require a CR protocol"
            );
        }
        let routing = self.cfg.routing.build(self.topo.as_ref());
        // The paper's timeout default needs the message length; apply
        // it here if traffic is attached and no explicit timeout given.
        if self.cfg.timeout.is_none() {
            if let Some((_, lengths, _)) = &self.traffic {
                self.cfg.timeout =
                    Some((lengths.mean().round() as u64).max(1) * routing.num_vcs() as u64);
            }
        }

        let n = self.topo.num_nodes();
        let root = SimRng::from_seed(self.cfg.seed);
        let mut sources = Vec::new();
        let mut offered = 0.0;
        if let Some((pattern, lengths, load)) = self.traffic {
            offered = load;
            if load > 0.0 {
                for i in 0..n {
                    sources.push(TrafficSource::new(
                        NodeId::new(i as u32),
                        n,
                        pattern,
                        lengths,
                        load,
                        root.split(3_000_000 + i as u64),
                    ));
                }
            }
        }

        Network::assemble(
            self.topo.clone(),
            self.cfg.clone(),
            routing,
            self.faults.clone(),
            sources,
            offered,
            cr_sim::shard::effective_shards(self.shards),
        )
    }
}
