//! The message reception interface (the paper's Fig. 8).
//!
//! The receiver assembles ejected flits into messages, interprets PAD
//! flits (stripping them from the delivered payload), discards partial
//! messages on kills, rejects duplicates, and — because adaptive
//! routing can let consecutive messages overtake each other in flight —
//! re-establishes per-(source, destination) order with sequence
//! numbers before delivering to the processor, preserving CR's
//! order-preserving transmission property end to end.

use cr_router::{Flit, FlitKind, WormId};
use cr_sim::{Cycle, MessageId, NodeId};
use std::collections::BTreeMap;

/// A message handed to the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredMessage {
    /// Message id.
    pub id: MessageId,
    /// Source node.
    pub src: NodeId,
    /// Destination (this receiver's node).
    pub dst: NodeId,
    /// Payload flits (padding stripped).
    pub payload_len: u32,
    /// Worm length on the wire (padding included).
    pub worm_len: u32,
    /// Per-(src, dst) sequence number.
    pub msg_seq: u64,
    /// Message creation time.
    pub created: Cycle,
    /// Delivery time (tail flit ejected and order re-established).
    pub delivered: Cycle,
    /// Attempts it took (1 = no retransmission).
    pub attempts: u32,
    /// `true` if any payload flit arrived corrupted — must never
    /// happen under FCR with perfect detection; counted as an
    /// integrity violation.
    pub corrupt: bool,
}

/// Receiver-side event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverCounters {
    /// Completed worms that arrived ahead of a predecessor and were
    /// held for reordering.
    pub out_of_order_arrivals: u64,
    /// Completed worms for an already-delivered sequence number
    /// (dropped).
    pub duplicates_dropped: u64,
    /// Partial assemblies discarded by kill teardown.
    pub partials_discarded: u64,
    /// Stale assemblies reaped by [`Receiver::prune`].
    pub assemblies_pruned: u64,
    /// PAD flits received (stripped overhead).
    pub pad_flits: u64,
}

#[derive(Debug)]
struct Assembly {
    flits_seen: u32,
    corrupt_payload: bool,
    last_update: Cycle,
}

/// The reception interface of one node.
#[derive(Debug)]
pub struct Receiver {
    node: NodeId,
    // BTreeMaps, not HashMaps: `prune` iterates `assembling`, and a
    // defined iteration order keeps every observable path
    // deterministic by construction (cr-lint `hash-collections`).
    assembling: BTreeMap<WormId, Assembly>,
    /// Next expected msg_seq per source.
    expected: BTreeMap<NodeId, u64>,
    /// Completed-but-early worms, keyed by (src, msg_seq).
    reorder: BTreeMap<(NodeId, u64), DeliveredMessage>,
    counters: ReceiverCounters,
}

impl Receiver {
    /// Creates the receiver for `node`.
    pub fn new(node: NodeId) -> Self {
        Receiver {
            node,
            assembling: BTreeMap::new(),
            expected: BTreeMap::new(),
            reorder: BTreeMap::new(),
            counters: ReceiverCounters::default(),
        }
    }

    /// The node this receiver serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Event counters.
    pub fn counters(&self) -> &ReceiverCounters {
        &self.counters
    }

    /// Worms currently mid-assembly.
    pub fn assembling_len(&self) -> usize {
        self.assembling.len()
    }

    /// Completed messages currently held for reordering.
    pub fn reorder_len(&self) -> usize {
        self.reorder.len()
    }

    /// Accepts one ejected flit; returns any messages that become
    /// deliverable (a tail can release a chain of held successors).
    ///
    /// # Panics
    ///
    /// Panics if the flit is not addressed to this node.
    pub fn on_flit(&mut self, now: Cycle, flit: Flit) -> Vec<DeliveredMessage> {
        assert_eq!(flit.dst, self.node, "misdelivered flit");
        if flit.seq >= flit.payload_len {
            // Padding overhead (PAD flits plus the appended tail slot).
            self.counters.pad_flits += 1;
        }
        let asm = self.assembling.entry(flit.worm).or_insert(Assembly {
            flits_seen: 0,
            corrupt_payload: false,
            last_update: now,
        });
        asm.flits_seen += 1;
        asm.last_update = now;
        if flit.corrupted && flit.kind != FlitKind::Pad {
            asm.corrupt_payload = true;
        }
        if !flit.is_tail() {
            return Vec::new();
        }

        // Tail: the worm is complete. The entry was created (or
        // touched) above, so this only misses if that invariant
        // breaks — stay loud in debug, drop the worm in release.
        let Some(asm) = self.assembling.remove(&flit.worm) else {
            debug_assert!(false, "tail flit without an assembly");
            return Vec::new();
        };
        debug_assert_eq!(asm.flits_seen, flit.worm_len, "flits went missing");
        let msg = DeliveredMessage {
            id: flit.worm.message,
            src: flit.src,
            dst: flit.dst,
            payload_len: flit.payload_len,
            worm_len: flit.worm_len,
            msg_seq: flit.msg_seq,
            created: flit.created,
            delivered: now,
            attempts: flit.worm.attempt + 1,
            corrupt: asm.corrupt_payload,
        };
        self.sequence(msg)
    }

    /// Applies per-source sequencing to a completed worm.
    fn sequence(&mut self, msg: DeliveredMessage) -> Vec<DeliveredMessage> {
        let expected = self.expected.entry(msg.src).or_insert(0);
        let mut out = Vec::new();
        match msg.msg_seq.cmp(expected) {
            std::cmp::Ordering::Less => {
                self.counters.duplicates_dropped += 1;
            }
            std::cmp::Ordering::Greater => {
                self.counters.out_of_order_arrivals += 1;
                self.reorder.insert((msg.src, msg.msg_seq), msg);
            }
            std::cmp::Ordering::Equal => {
                out.push(msg);
                *expected += 1;
                // Drain any successors already waiting.
                while let Some(next) = self.reorder.remove(&(msg.src, *expected)) {
                    out.push(next);
                    *expected += 1;
                }
            }
        }
        out
    }

    /// Appends this receiver's protocol-relevant state to `out` in the
    /// model checker's canonical form (see [`crate::check_api`]).
    /// `label` maps a raw message id to its `(src, dst, msg_seq)` flow
    /// key so the encoding is invariant under message-id assignment
    /// order; assemblies are sorted by that key before encoding
    /// because `BTreeMap` iteration follows raw ids. Metrics-only
    /// fields (counters, `created`/`delivered` stamps) are excluded.
    pub(crate) fn encode_state(
        &self,
        now: Cycle,
        label: &dyn Fn(MessageId) -> (u32, u32, u64),
        out: &mut Vec<u8>,
    ) {
        fn put_label(out: &mut Vec<u8>, l: (u32, u32, u64)) {
            out.extend_from_slice(&l.0.to_le_bytes());
            out.extend_from_slice(&l.1.to_le_bytes());
            out.extend_from_slice(&l.2.to_le_bytes());
        }
        let mut asm: Vec<((u32, u32, u64), u32, &Assembly)> = self
            .assembling
            .iter()
            .map(|(w, a)| (label(w.message), w.attempt, a))
            .collect();
        asm.sort_by_key(|&(l, attempt, _)| (l, attempt));
        out.extend_from_slice(&crate::network::idx32(asm.len()).to_le_bytes());
        for (l, attempt, a) in asm {
            put_label(out, l);
            out.extend_from_slice(&attempt.to_le_bytes());
            out.extend_from_slice(&a.flits_seen.to_le_bytes());
            out.push(u8::from(a.corrupt_payload));
            out.extend_from_slice(&now.saturating_since(a.last_update).to_le_bytes());
        }
        out.extend_from_slice(&crate::network::idx32(self.expected.len()).to_le_bytes());
        for (n, seq) in &self.expected {
            out.extend_from_slice(&n.as_u32().to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
        }
        out.extend_from_slice(&crate::network::idx32(self.reorder.len()).to_le_bytes());
        for ((src, seq), m) in &self.reorder {
            out.extend_from_slice(&src.as_u32().to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&m.payload_len.to_le_bytes());
            out.extend_from_slice(&m.worm_len.to_le_bytes());
            out.extend_from_slice(&m.attempts.to_le_bytes());
            out.push(u8::from(m.corrupt));
        }
    }

    /// Discards the partial assembly of `worm` (forward kill reached
    /// the ejection port, or its flits were dropped mid-flight).
    pub fn discard(&mut self, worm: WormId) {
        if self.assembling.remove(&worm).is_some() {
            self.counters.partials_discarded += 1;
        }
    }

    /// Reaps assemblies untouched since `horizon` (teardown corpses
    /// whose kill token never reached the ejection side).
    pub fn prune(&mut self, horizon: Cycle) {
        let before = self.assembling.len();
        self.assembling.retain(|_, a| a.last_update >= horizon);
        self.counters.assemblies_pruned += (before - self.assembling.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_router::flit::worm_flits;

    fn worm_id(msg: u64, attempt: u32) -> WormId {
        WormId::new(MessageId::new(msg), attempt)
    }

    fn flits(msg: u64, attempt: u32, payload: u32, pad: u32, seq: u64) -> Vec<Flit> {
        worm_flits(
            worm_id(msg, attempt),
            NodeId::new(1),
            NodeId::new(0),
            payload,
            pad,
            seq,
            Cycle::ZERO,
        )
        .collect()
    }

    #[test]
    fn assembles_and_delivers_in_order() {
        let mut rx = Receiver::new(NodeId::new(0));
        let fs = flits(1, 0, 4, 0, 0);
        let mut got = Vec::new();
        for (i, f) in fs.iter().enumerate() {
            let out = rx.on_flit(Cycle::new(i as u64), *f);
            got.extend(out);
        }
        assert_eq!(got.len(), 1);
        let m = got[0];
        assert_eq!(m.id, MessageId::new(1));
        assert_eq!(m.payload_len, 4);
        assert_eq!(m.attempts, 1);
        assert!(!m.corrupt);
        assert_eq!(m.delivered, Cycle::new(3));
    }

    #[test]
    fn pads_are_counted_and_stripped() {
        let mut rx = Receiver::new(NodeId::new(0));
        let fs = flits(1, 0, 2, 3, 0);
        let mut got = Vec::new();
        for f in &fs {
            got.extend(rx.on_flit(Cycle::ZERO, *f));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload_len, 2);
        assert_eq!(got[0].worm_len, 5);
        assert_eq!(rx.counters().pad_flits, 3);
    }

    #[test]
    fn out_of_order_messages_are_held_and_released() {
        let mut rx = Receiver::new(NodeId::new(0));
        // Message seq 1 completes first (overtook seq 0 in flight).
        for f in &flits(2, 0, 2, 0, 1) {
            assert!(rx.on_flit(Cycle::ZERO, *f).is_empty());
        }
        assert_eq!(rx.counters().out_of_order_arrivals, 1);
        assert_eq!(rx.reorder_len(), 1);
        // Seq 0 arrives: both deliver, in order.
        let mut got = Vec::new();
        for f in &flits(1, 0, 2, 0, 0) {
            got.extend(rx.on_flit(Cycle::new(5), *f));
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].msg_seq, 0);
        assert_eq!(got[1].msg_seq, 1);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut rx = Receiver::new(NodeId::new(0));
        for f in &flits(1, 0, 2, 0, 0) {
            let _ = rx.on_flit(Cycle::ZERO, *f);
        }
        // A retransmitted copy of seq 0 completes later.
        let mut got = Vec::new();
        for f in &flits(1, 1, 2, 0, 0) {
            got.extend(rx.on_flit(Cycle::new(9), *f));
        }
        assert!(got.is_empty());
        assert_eq!(rx.counters().duplicates_dropped, 1);
    }

    #[test]
    fn discard_drops_partial_assembly() {
        let mut rx = Receiver::new(NodeId::new(0));
        let fs = flits(1, 0, 4, 0, 0);
        let _ = rx.on_flit(Cycle::ZERO, fs[0]);
        let _ = rx.on_flit(Cycle::ZERO, fs[1]);
        assert_eq!(rx.assembling_len(), 1);
        rx.discard(worm_id(1, 0));
        assert_eq!(rx.assembling_len(), 0);
        assert_eq!(rx.counters().partials_discarded, 1);
        // Discarding again is a no-op.
        rx.discard(worm_id(1, 0));
        assert_eq!(rx.counters().partials_discarded, 1);
    }

    #[test]
    fn corrupt_payload_is_flagged_but_pad_corruption_is_not() {
        let mut rx = Receiver::new(NodeId::new(0));
        let mut fs = flits(1, 0, 3, 2, 0);
        fs[1].corrupted = true; // payload body flit
        let mut got = Vec::new();
        for f in &fs {
            got.extend(rx.on_flit(Cycle::ZERO, *f));
        }
        assert!(got[0].corrupt);

        let mut fs = flits(2, 0, 3, 2, 1);
        fs[3].corrupted = true; // PAD flit: payload unharmed
        let mut got = Vec::new();
        for f in &fs {
            got.extend(rx.on_flit(Cycle::ZERO, *f));
        }
        assert!(!got[0].corrupt);
    }

    #[test]
    fn prune_reaps_stale_assemblies() {
        let mut rx = Receiver::new(NodeId::new(0));
        let fs = flits(1, 0, 4, 0, 0);
        let _ = rx.on_flit(Cycle::new(10), fs[0]);
        rx.prune(Cycle::new(5)); // not stale yet
        assert_eq!(rx.assembling_len(), 1);
        rx.prune(Cycle::new(100));
        assert_eq!(rx.assembling_len(), 0);
        assert_eq!(rx.counters().assemblies_pruned, 1);
    }

    #[test]
    fn pruned_partial_then_retransmit_delivers_exactly_once() {
        // Attempt 0 is killed mid-flight: head and one body flit make
        // it to the ejection side, the tail never does, and (the kill
        // token having died with the worm) nobody calls discard(). The
        // periodic prune reaps the corpse; the retransmitted attempt 1
        // then delivers exactly once, and nothing double-counts.
        let mut rx = Receiver::new(NodeId::new(0));
        let a0 = flits(1, 0, 4, 0, 0);
        assert!(rx.on_flit(Cycle::new(10), a0[0]).is_empty());
        assert!(rx.on_flit(Cycle::new(11), a0[1]).is_empty());
        assert_eq!(rx.assembling_len(), 1);

        rx.prune(Cycle::new(500));
        assert_eq!(rx.assembling_len(), 0);
        assert_eq!(rx.counters().assemblies_pruned, 1);

        let mut got = Vec::new();
        for f in &flits(1, 1, 4, 0, 0) {
            got.extend(rx.on_flit(Cycle::new(600), *f));
        }
        assert_eq!(got.len(), 1, "retransmit delivers exactly once");
        assert_eq!(got[0].id, MessageId::new(1));
        assert_eq!(got[0].attempts, 2);
        assert_eq!(rx.counters().duplicates_dropped, 0);
        assert_eq!(rx.counters().partials_discarded, 0);
        assert_eq!(rx.assembling_len(), 0);
    }

    #[test]
    fn discarded_partial_then_retransmit_delivers_exactly_once() {
        // Same story, but the kill token *does* reach the ejection
        // side: discard() reaps the partial, then the retry delivers.
        let mut rx = Receiver::new(NodeId::new(0));
        let a0 = flits(3, 0, 5, 0, 0);
        assert!(rx.on_flit(Cycle::new(1), a0[0]).is_empty());
        assert!(rx.on_flit(Cycle::new(2), a0[1]).is_empty());
        rx.discard(worm_id(3, 0));
        assert_eq!(rx.counters().partials_discarded, 1);

        let mut got = Vec::new();
        for f in &flits(3, 1, 5, 0, 0) {
            got.extend(rx.on_flit(Cycle::new(40), *f));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].attempts, 2);

        // A straggling duplicate of the whole message (e.g. the kill
        // raced a fully-delivered worm) is sequenced out.
        let mut got = Vec::new();
        for f in &flits(3, 2, 5, 0, 0) {
            got.extend(rx.on_flit(Cycle::new(80), *f));
        }
        assert!(got.is_empty());
        assert_eq!(rx.counters().duplicates_dropped, 1);
    }

    #[test]
    fn prune_spares_live_assemblies_while_reaping_stale_ones() {
        // Two in-progress worms; only the stale one is reaped.
        let mut rx = Receiver::new(NodeId::new(0));
        let stale = flits(7, 0, 4, 0, 0);
        let live = flits(8, 0, 4, 0, 1);
        let _ = rx.on_flit(Cycle::new(10), stale[0]);
        let _ = rx.on_flit(Cycle::new(490), live[0]);
        rx.prune(Cycle::new(400));
        assert_eq!(rx.assembling_len(), 1);
        assert_eq!(rx.counters().assemblies_pruned, 1);
        // The survivor still completes normally.
        let mut got = Vec::new();
        for f in &live[1..] {
            got.extend(rx.on_flit(Cycle::new(495), *f));
        }
        // seq 1 waits for seq 0 (killed message 7 will eventually
        // retransmit), so it is held, not dropped.
        assert!(got.is_empty());
        assert_eq!(rx.reorder_len(), 1);
        assert_eq!(rx.counters().out_of_order_arrivals, 1);
    }

    #[test]
    #[should_panic]
    fn misdelivered_flit_panics() {
        let mut rx = Receiver::new(NodeId::new(9));
        let fs = flits(1, 0, 2, 0, 0);
        let _ = rx.on_flit(Cycle::ZERO, fs[0]);
    }
}
