//! Retransmission gap policies (the paper's Fig. 11 comparison).

use cr_sim::SimRng;

/// How long a killed message waits before its retransmission.
///
/// The paper compares fixed ("static") gaps against a dynamic scheme —
/// binary exponential backoff, "of course, quite similar to the binary
/// exponential backoff used in Ethernet networks" — and finds the
/// dynamic scheme tracks the best static gap across the whole load
/// range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetransmitScheme {
    /// Wait exactly `gap` cycles after every kill.
    StaticGap {
        /// The fixed gap in cycles.
        gap: u64,
    },
    /// Ethernet-style binary exponential backoff: after the `n`-th kill
    /// of a message, wait a uniformly random number of `slot`-cycle
    /// slots in `0..2^min(n, ceiling)` (plus one slot so the gap is
    /// never zero).
    ExponentialBackoff {
        /// Slot duration in cycles.
        slot: u64,
        /// Exponent ceiling (Ethernet uses 10).
        ceiling: u32,
    },
}

impl Default for RetransmitScheme {
    /// The paper's preferred dynamic scheme with a 16-cycle slot.
    fn default() -> Self {
        RetransmitScheme::ExponentialBackoff {
            slot: 16,
            ceiling: 10,
        }
    }
}

impl RetransmitScheme {
    /// The gap, in cycles, before retransmission attempt
    /// `attempt` (1 = first retry).
    ///
    /// # Panics
    ///
    /// Panics if `attempt` is zero (attempt 0 is the original
    /// transmission; it has no gap).
    pub fn gap(&self, attempt: u32, rng: &mut SimRng) -> u64 {
        assert!(attempt > 0, "attempt 0 is the original transmission");
        match *self {
            RetransmitScheme::StaticGap { gap } => gap,
            RetransmitScheme::ExponentialBackoff { slot, ceiling } => {
                // Clamp to 63: `1u64 << 64` would overflow when a
                // caller configures `ceiling >= 64` (or leaves it
                // above an extreme attempt count).
                let exp = attempt.min(ceiling).min(63);
                let window = 1u64 << exp;
                let slots = rng.pick_index(window as usize).unwrap_or(0) as u64 + 1;
                slots * slot
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_gap_is_constant() {
        let s = RetransmitScheme::StaticGap { gap: 64 };
        let mut rng = SimRng::from_seed(0);
        for attempt in 1..10 {
            assert_eq!(s.gap(attempt, &mut rng), 64);
        }
    }

    #[test]
    fn backoff_grows_with_attempts() {
        let s = RetransmitScheme::ExponentialBackoff {
            slot: 8,
            ceiling: 10,
        };
        let mut rng = SimRng::from_seed(5);
        // Average gap over many draws grows with the attempt number.
        let avg = |attempt: u32, rng: &mut SimRng| -> f64 {
            let n = 2000;
            (0..n).map(|_| s.gap(attempt, rng) as f64).sum::<f64>() / n as f64
        };
        let a1 = avg(1, &mut rng);
        let a4 = avg(4, &mut rng);
        let a8 = avg(8, &mut rng);
        assert!(a1 < a4 && a4 < a8, "{a1} {a4} {a8}");
        // Expected mean of attempt n is slot * (2^n + 1) / 2.
        assert!((a1 - 8.0 * 1.5).abs() < 1.0, "a1 = {a1}");
    }

    #[test]
    fn backoff_is_never_zero_and_bounded() {
        let s = RetransmitScheme::ExponentialBackoff {
            slot: 4,
            ceiling: 3,
        };
        let mut rng = SimRng::from_seed(9);
        for attempt in 1..40 {
            let g = s.gap(attempt, &mut rng);
            assert!(g >= 4);
            assert!(g <= 4 * 8, "ceiling caps the window");
        }
    }

    #[test]
    #[should_panic]
    fn attempt_zero_rejected() {
        RetransmitScheme::default().gap(0, &mut SimRng::from_seed(0));
    }

    #[test]
    fn huge_ceiling_and_attempt_do_not_overflow() {
        // Regression: `1u64 << exp` paniced (in debug) or wrapped once
        // `min(attempt, ceiling) >= 64`. The exponent is clamped to 63
        // now, so the window saturates instead.
        let s = RetransmitScheme::ExponentialBackoff {
            slot: 1,
            ceiling: u32::MAX,
        };
        let mut rng = SimRng::from_seed(1);
        for attempt in [63, 64, 65, 1000, u32::MAX] {
            let g = s.gap(attempt, &mut rng);
            assert!(g >= 1, "attempt {attempt}");
        }
        // The boundary itself: exponent exactly 63 is the largest
        // representable window.
        let s = RetransmitScheme::ExponentialBackoff {
            slot: 1,
            ceiling: 63,
        };
        assert!(s.gap(64, &mut rng) >= 1);
    }
}
