//! Tests of the `Network` public API surface: validation, accessors,
//! bookkeeping — the things the scenario tests don't poke directly.

use cr_core::{NetworkBuilder, ProtocolKind, RetransmitScheme, RoutingKind};
use cr_sim::NodeId;
use cr_topology::{GraphTopology, KAryNCube};
use cr_traffic::{LengthDistribution, TrafficPattern};

fn quiet_net() -> cr_core::Network {
    NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .warmup(0)
        .seed(1)
        .build()
}

#[test]
#[should_panic]
fn self_addressed_message_rejected() {
    let mut net = quiet_net();
    net.send_message(NodeId::new(3), NodeId::new(3), 8);
}

#[test]
#[should_panic]
fn out_of_range_destination_rejected() {
    let mut net = quiet_net();
    net.send_message(NodeId::new(0), NodeId::new(99), 8);
}

#[test]
#[should_panic]
fn one_flit_message_rejected() {
    let mut net = quiet_net();
    net.send_message(NodeId::new(0), NodeId::new(1), 1);
}

#[test]
fn message_ids_are_unique_and_sequential_counters_work() {
    let mut net = quiet_net();
    let a = net.send_message(NodeId::new(0), NodeId::new(1), 4);
    let b = net.send_message(NodeId::new(0), NodeId::new(1), 4);
    let c = net.send_message(NodeId::new(2), NodeId::new(1), 4);
    assert_ne!(a, b);
    assert_ne!(b, c);
    assert_eq!(net.counters().messages_generated, 3);
}

#[test]
fn delivery_log_respects_toggle() {
    let mut net = quiet_net();
    net.send_message(NodeId::new(0), NodeId::new(5), 6);
    assert!(net.run_until_quiescent(10_000));
    assert!(net.take_delivery_log().is_empty(), "off by default");

    net.set_record_deliveries(true);
    net.send_message(NodeId::new(0), NodeId::new(5), 6);
    assert!(net.run_until_quiescent(10_000));
    assert_eq!(net.take_delivery_log().len(), 1);
    assert!(net.take_delivery_log().is_empty(), "log drains");
}

#[test]
fn report_is_available_mid_run() {
    let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.2)
        .warmup(100)
        .seed(2)
        .build();
    for _ in 0..500 {
        net.step();
    }
    let early = net.report();
    for _ in 0..500 {
        net.step();
    }
    let late = net.report();
    assert_eq!(early.cycles, 500);
    assert_eq!(late.cycles, 1000);
    assert!(late.counters.messages_delivered >= early.counters.messages_delivered);
}

#[test]
fn accessors_expose_components() {
    let net = quiet_net();
    assert_eq!(net.topology().num_nodes(), 16);
    assert_eq!(net.now().as_u64(), 0);
    assert!(!net.is_deadlocked());
    assert_eq!(net.flits_in_flight(), 0);
    let r = net.router(NodeId::new(7));
    assert_eq!(r.node(), NodeId::new(7));
    let rx = net.receiver(NodeId::new(7));
    assert_eq!(rx.node(), NodeId::new(7));
    let inj = net.injector(NodeId::new(7), 0);
    assert!(inj.is_drained());
    // Debug output is informative.
    let dbg = format!("{net:?}");
    assert!(dbg.contains("torus"));
}

#[test]
#[should_panic]
fn dor_on_irregular_graph_rejected() {
    let g = GraphTopology::from_undirected_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    let _ = NetworkBuilder::new(g)
        .routing(RoutingKind::Dor { lanes: 1 })
        .protocol(ProtocolKind::Baseline)
        .build();
}

#[test]
#[should_panic]
fn path_wide_requires_cr() {
    let _ = NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Dor { lanes: 1 })
        .protocol(ProtocolKind::Baseline)
        .path_wide(32)
        .build();
}

#[test]
fn builder_is_reusable() {
    // Non-consuming builder: build twice, identical networks.
    let mut b = NetworkBuilder::new(KAryNCube::torus(4, 2));
    b.routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.2)
        .seed(5);
    let r1 = b.build().run(2_000);
    let r2 = b.build().run(2_000);
    assert_eq!(
        r1.counters.messages_delivered,
        r2.counters.messages_delivered
    );
}

#[test]
fn retransmit_scheme_is_configurable() {
    let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .retransmit(RetransmitScheme::StaticGap { gap: 4 })
        .timeout(8)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.4)
        .warmup(200)
        .seed(6)
        .build();
    let report = net.run(5_000);
    assert!(report.counters.retransmissions > 0);
    assert!(!report.deadlocked);
}

#[test]
fn mesh_networks_work_end_to_end() {
    let mut net = NetworkBuilder::new(KAryNCube::mesh(4, 2))
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.2)
        .warmup(200)
        .seed(7)
        .build();
    let report = net.run(4_000);
    assert!(!report.deadlocked);
    assert!(report.counters.messages_delivered > 100);
}

#[test]
fn deep_channels_change_i_min_and_pad_more() {
    let pad_at = |latency: u64| {
        let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
            .routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .channel_latency(latency)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.1)
            .warmup(200)
            .seed(8)
            .build();
        net.run(4_000).pad_overhead()
    };
    assert!(
        pad_at(4) > pad_at(1),
        "deeper channels store more flits, so I_min and padding grow"
    );
}

#[test]
fn dor_on_hypercube_is_ecube_and_safe() {
    // The hypercube has no wraparound channels, so dimension-order
    // routing degenerates to classic e-cube: deadlock-free with a
    // single virtual channel class.
    let mut net = NetworkBuilder::new(cr_topology::Hypercube::new(4))
        .routing(RoutingKind::Dor { lanes: 1 })
        .protocol(ProtocolKind::Baseline)
        .deadlock_threshold(2_000)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.3)
        .warmup(200)
        .seed(41)
        .build();
    let report = net.run(8_000);
    assert!(!report.deadlocked);
    assert!(report.counters.messages_delivered > 400);
    assert_eq!(report.total_kills(), 0);
}

#[test]
fn cr_works_in_three_dimensions() {
    // 4-ary 3-cube torus: 64 nodes, six ports each. Nothing about CR
    // is dimension-specific; this exercises the >2D code paths.
    let mut net = NetworkBuilder::new(KAryNCube::torus(4, 3))
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(12), 0.25)
        .warmup(500)
        .seed(43)
        .build();
    let report = net.run(6_000);
    assert!(!report.deadlocked);
    assert!(report.counters.messages_delivered > 800);
    assert_eq!(report.counters.corrupt_payload_delivered, 0);
}

#[test]
fn trace_scheduling_composes_with_bernoulli_traffic() {
    use cr_traffic::Trace;
    let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.1)
        .warmup(0)
        .seed(45)
        .build();
    let topo = KAryNCube::torus(4, 2);
    let trace = Trace::neighbor_exchange(&topo, 2, 300, 8);
    net.schedule_trace(&trace);
    assert_eq!(net.scheduled_len(), trace.len());
    let report = net.run(3_000);
    assert_eq!(net.scheduled_len(), 0, "all events fired");
    // Background traffic (~0.1 * 16 * 3000 / 8 = 600 msgs) plus the
    // trace's 128 messages, minus whatever is still in flight.
    assert!(report.counters.messages_generated as usize >= trace.len());
    assert!(!report.deadlocked);
}
