//! Conformance between the model checker's transition API and the
//! ordinary simulation front door.
//!
//! The `cr-check` model checker drives networks through
//! [`cr_core::check_api::ProtocolStep`]: injections via
//! `inject`, faults via `kill_link_now` / `revive_link_now`, time via
//! `tick`. The regular simulator drives the *same* `Network` through
//! `send_message`, a [`ChurnSchedule`] and `step`. If those two doors
//! ever diverge, the checker proves theorems about a machine nobody
//! runs — so this property test twin-runs randomly generated tiny
//! scenarios through both and requires identical outcomes: per-flow
//! delivery/corruption tallies, the full counter block, the clock and
//! the quiescence verdict.

use std::collections::BTreeMap;

use cr_core::check_api::{CheckNet, DeliveryCount, FlowKey, ProtocolStep};
use cr_core::{Network, NetworkBuilder, ProtocolKind, RetransmitScheme, RoutingKind};
use cr_faults::ChurnSchedule;
use cr_sim::check::{check, Config};
use cr_sim::{Cycle, LinkId, NodeId};
use cr_topology::{KAryNCube, Topology};

/// One externally scheduled action, in the shape both doors accept.
#[derive(Debug, Clone, Copy)]
enum Op {
    Inject { src: u32, dst: u32, len: u32 },
    Kill { link: u32 },
    Revive { link: u32 },
}

const RUN_CYCLES: u64 = 200;

fn build(topo_pick: usize, fcr: bool) -> NetworkBuilder {
    let topo: Box<dyn Topology> = match topo_pick {
        0 => Box::new(KAryNCube::torus(2, 1)),
        1 => Box::new(KAryNCube::torus(3, 1)),
        _ => Box::new(KAryNCube::torus(2, 2)),
    };
    let mut b = NetworkBuilder::new_boxed(topo);
    b.routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(if fcr { ProtocolKind::Fcr } else { ProtocolKind::Cr })
        .buffer_depth(2)
        .timeout(8)
        .retransmit(RetransmitScheme::StaticGap { gap: 6 })
        .deadlock_threshold(10_000)
        .warmup(0)
        .seed(7)
        .shards(1);
    b
}

fn num_links(topo_pick: usize) -> u32 {
    match topo_pick {
        0 => 4,  // 2-node ring: two parallel channels each way
        1 => 6,  // 3-ring: 2 channels per node
        _ => 16, // 2x2 torus: 4 channels per node
    }
}

fn num_nodes(topo_pick: usize) -> u32 {
    match topo_pick {
        0 => 2,
        1 => 3,
        _ => 4,
    }
}

/// Drives a fresh network through the checker door.
fn run_checker_door(
    topo_pick: usize,
    fcr: bool,
    schedule: &[(u64, Op)],
) -> (BTreeMap<FlowKey, DeliveryCount>, cr_core::NetCounters, u64, bool) {
    let mut net = CheckNet::new(build(topo_pick, fcr).build());
    for cycle in 0..RUN_CYCLES {
        for &(at, op) in schedule {
            if at != cycle {
                continue;
            }
            match op {
                Op::Inject { src, dst, len } => {
                    net.inject(NodeId::new(src), NodeId::new(dst), len);
                }
                Op::Kill { link } => net.kill_link_now(LinkId::new(link)),
                Op::Revive { link } => net.revive_link_now(LinkId::new(link)),
            }
        }
        net.tick();
    }
    let quiescent = net.network().flits_in_flight() == 0;
    let deliveries = net.deliveries().clone();
    let counters = *net.network().counters();
    (deliveries, counters, net.now().as_u64(), quiescent)
}

/// Drives a fresh network through the ordinary front door.
fn run_front_door(
    topo_pick: usize,
    fcr: bool,
    schedule: &[(u64, Op)],
) -> (BTreeMap<FlowKey, DeliveryCount>, cr_core::NetCounters, u64, bool) {
    let mut churn = ChurnSchedule::new();
    for &(at, op) in schedule {
        match op {
            Op::Kill { link } => {
                churn.kill_link(Cycle::new(at), LinkId::new(link));
            }
            Op::Revive { link } => {
                churn.revive_link(Cycle::new(at), LinkId::new(link));
            }
            Op::Inject { .. } => {}
        }
    }
    let mut net: Network = build(topo_pick, fcr).churn(churn).build();
    net.set_reference_stepper(true);
    net.set_record_deliveries(true);

    let mut deliveries: BTreeMap<FlowKey, DeliveryCount> = BTreeMap::new();
    for cycle in 0..RUN_CYCLES {
        for &(at, op) in schedule {
            if at != cycle {
                continue;
            }
            if let Op::Inject { src, dst, len } = op {
                net.send_message(NodeId::new(src), NodeId::new(dst), len);
            }
        }
        net.step();
        for d in net.take_delivery_log() {
            let e = deliveries
                .entry((d.src.as_u32(), d.dst.as_u32(), d.msg_seq))
                .or_default();
            e.delivered += 1;
            if d.corrupt {
                e.corrupt += 1;
            }
        }
    }
    let quiescent = net.flits_in_flight() == 0;
    let counters = *net.counters();
    (deliveries, counters, net.now().as_u64(), quiescent)
}

#[test]
fn protocol_step_matches_front_door() {
    check("protocol_step_matches_front_door", Config::default(), |src| {
        let topo_pick = src.usize_in(0..3);
        let fcr = src.usize_in(0..2) == 1;
        let nodes = num_nodes(topo_pick);
        let links = num_links(topo_pick);

        let mut schedule: Vec<(u64, Op)> = Vec::new();
        for _ in 0..src.usize_in(1..4) {
            let s = src.usize_in(0..nodes as usize) as u32;
            let mut d = src.usize_in(0..nodes as usize) as u32;
            if d == s {
                d = (d + 1) % nodes;
            }
            let len = src.usize_in(2..6) as u32;
            schedule.push((src.usize_in(0..6) as u64, Op::Inject { src: s, dst: d, len }));
        }
        for _ in 0..src.usize_in(0..3) {
            let link = src.usize_in(0..links as usize) as u32;
            let at = src.usize_in(0..6) as u64;
            let back = at + 1 + src.usize_in(0..8) as u64;
            schedule.push((at, Op::Kill { link }));
            schedule.push((back, Op::Revive { link }));
        }
        // Both doors apply same-cycle actions in schedule order; sort
        // by cycle, keeping that order stable for ties.
        schedule.sort_by_key(|&(at, _)| at);

        let a = run_checker_door(topo_pick, fcr, &schedule);
        let b = run_front_door(topo_pick, fcr, &schedule);
        assert_eq!(a.0, b.0, "per-flow delivery outcomes diverge");
        assert_eq!(a.1, b.1, "counters diverge");
        assert_eq!(a.2, b.2, "clocks diverge");
        assert_eq!(a.3, b.3, "quiescence verdicts diverge");
    });
}
