//! End-to-end protocol tests: the paper's core claims, verified on
//! small networks.

use cr_core::{NetworkBuilder, ProtocolKind, RoutingKind};
use cr_faults::FaultModel;
use cr_sim::{NodeId, SimRng};
use cr_topology::{GraphTopology, Hypercube, KAryNCube, Topology};
use cr_traffic::{LengthDistribution, TrafficPattern};

/// A single message crosses an idle torus and arrives with (roughly)
/// zero-load latency: one cycle per hop plus one per flit plus the
/// interface overheads.
#[test]
fn single_message_zero_load_latency() {
    let topo = KAryNCube::torus(8, 2);
    let src = topo.node_at(&[0, 0]);
    let dst = topo.node_at(&[3, 2]); // 5 hops
    let mut net = NetworkBuilder::new(topo)
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .warmup(0)
        .build();
    net.set_record_deliveries(true);
    net.send_message(src, dst, 16);
    assert!(net.run_until_quiescent(1_000), "message must drain");
    let log = net.take_delivery_log();
    assert_eq!(log.len(), 1);
    let m = log[0];
    assert_eq!(m.payload_len, 16);
    // 16 payload flits at distance 5: i_min = 2 + 5*3 = 17 > 16, so one
    // flit of padding. Latency = hops + worm_len + interface overhead.
    let latency = m.delivered - m.created;
    assert!(
        (21..=30).contains(&latency),
        "zero-load latency was {latency}"
    );
    assert_eq!(net.counters().kills_source_timeout, 0);
    assert_eq!(net.counters().corrupt_payload_delivered, 0);
}

/// The headline claim: plain adaptive wormhole routing deadlocks on a
/// torus, and CR's kill/retransmit recovery removes the deadlock with
/// the *same* routing function and zero virtual channels.
#[test]
fn adaptive_torus_deadlocks_without_cr_but_not_with_it() {
    let build = |protocol| {
        let mut b = NetworkBuilder::new(KAryNCube::torus(4, 2));
        b.routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(protocol)
            .buffer_depth(1)
            .deadlock_threshold(2_000)
            .traffic(
                TrafficPattern::Uniform,
                LengthDistribution::Fixed(16),
                0.45,
            )
            // This seed jams the baseline within ~4k cycles under the
            // pinned SimRng stream (see crates/sim/tests/rng_golden.rs)
            // and the one-cycle credit-return latency (DESIGN.md §12);
            // reseed from a fresh scan if either ever changes.
            .seed(2);
        b.build()
    };

    // Baseline: cyclic channel waits jam forever; the watchdog fires.
    let mut baseline = build(ProtocolKind::Baseline);
    let report = baseline.run(30_000);
    assert!(
        report.deadlocked,
        "plain adaptive wormhole routing on a torus must deadlock \
         under heavy load (got {} delivered)",
        report.counters.messages_delivered
    );

    // CR: same routing, same load — recovery keeps it live.
    let mut cr = build(ProtocolKind::Cr);
    let report = cr.run(30_000);
    assert!(!report.deadlocked, "CR must recover from every deadlock");
    assert!(
        report.counters.kills_source_timeout > 0,
        "recovery must actually have been exercised"
    );
    assert!(report.counters.messages_delivered > 500);
}

/// Dimension-order routing with dateline VCs is deadlock-free on the
/// torus without any CR machinery (the baseline the paper compares
/// against).
#[test]
fn dor_baseline_is_deadlock_free() {
    let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Dor { lanes: 1 })
        .protocol(ProtocolKind::Baseline)
        .deadlock_threshold(2_000)
        .traffic(
            TrafficPattern::Uniform,
            LengthDistribution::Fixed(16),
            0.45,
        )
        .seed(3)
        .build();
    let report = net.run(30_000);
    assert!(!report.deadlocked);
    assert_eq!(report.total_kills(), 0);
    assert!(report.counters.messages_delivered > 500);
}

/// Duato's protocol stays deadlock-free and its escape-channel
/// allocations (the paper's PDS estimate) are visible in the report.
#[test]
fn duato_counts_potential_deadlock_situations() {
    let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Duato { adaptive_vcs: 1 })
        .protocol(ProtocolKind::Baseline)
        .deadlock_threshold(5_000)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.4)
        .seed(5)
        .build();
    let report = net.run(20_000);
    assert!(!report.deadlocked);
    assert!(
        report.counters.escape_allocations > 0,
        "high load must produce potential deadlock situations"
    );
    assert!(report.pds_per_node_kilocycle() > 0.0);
}

/// Everything sent is delivered exactly once and in order, per
/// source/destination pair — CR's order-preserving transmission.
#[test]
fn cr_delivers_everything_exactly_once_in_order() {
    let topo = KAryNCube::torus(4, 2);
    let mut net = NetworkBuilder::new(topo)
        .routing(RoutingKind::Adaptive { vcs: 2 })
        .protocol(ProtocolKind::Cr)
        .timeout(24)
        .warmup(0)
        .seed(9)
        .build();
    net.set_record_deliveries(true);

    // A deterministic all-pairs burst: every node sends 5 messages to
    // every other node.
    let n = net.topology().num_nodes();
    let mut sent = 0;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            for _ in 0..5 {
                net.send_message(NodeId::new(s as u32), NodeId::new(d as u32), 8);
                sent += 1;
            }
        }
    }
    assert!(net.run_until_quiescent(200_000), "burst must drain");
    let log = net.take_delivery_log();
    assert_eq!(log.len(), sent, "exactly-once delivery");

    // In-order per (src, dst): the sequence numbers as delivered are
    // strictly increasing for each pair.
    let mut last: std::collections::HashMap<(u32, u32), u64> = std::collections::HashMap::new();
    for m in &log {
        let key = (m.src.as_u32(), m.dst.as_u32());
        if let Some(prev) = last.get(&key) {
            assert!(m.msg_seq > *prev, "order violated for {key:?}");
        }
        last.insert(key, m.msg_seq);
    }
    assert_eq!(net.counters().corrupt_payload_delivered, 0);
}

/// After a CR burst fully drains, the network is pristine: no buffered
/// flits and every credit restored — teardown leaks nothing.
#[test]
fn teardown_conserves_credits_and_buffers() {
    let topo = KAryNCube::torus(4, 2);
    let mut net = NetworkBuilder::new(topo.clone())
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .buffer_depth(2)
        .timeout(8) // aggressive: force plenty of kills
        .warmup(0)
        .seed(21)
        .build();
    let n = topo.num_nodes();
    for s in 0..n {
        for k in 1..4usize {
            let d = (s + k * 5) % n;
            if d != s {
                net.send_message(NodeId::new(s as u32), NodeId::new(d as u32), 12);
            }
        }
    }
    assert!(net.run_until_quiescent(100_000));
    assert!(net.counters().kills_source_timeout > 0, "kills expected");
    assert_eq!(net.flits_in_flight(), 0);
    for i in 0..n {
        let node = NodeId::new(i as u32);
        let r = net.router(node);
        for p in 0..topo.num_ports(node) {
            for v in 0..1 {
                let (port, vc) = (cr_sim::PortId::new(p as u16), cr_sim::VcId::new(v));
                // Full credits = buffer depth (2) + channel latches (1).
                assert_eq!(
                    r.credits(port, vc),
                    3,
                    "credit leak at {node} {port} {vc}"
                );
                assert!(r.output_owner(port, vc).is_none(), "stuck allocation");
            }
        }
    }
}

/// FCR with transient faults: every message still arrives exactly
/// once, uncorrupted — the paper's nonstop fault-tolerance.
#[test]
fn fcr_survives_transient_faults_with_perfect_integrity() {
    let mut faults = FaultModel::new();
    faults.set_transient_rate(2e-3); // aggressive for a short test
    let topo = KAryNCube::torus(4, 2);
    let mut net = NetworkBuilder::new(topo)
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Fcr)
        .faults(faults)
        .timeout(32)
        .warmup(0)
        .seed(13)
        .build();
    net.set_record_deliveries(true);
    let n = net.topology().num_nodes();
    let mut sent = 0;
    for s in 0..n {
        for k in [1usize, 3, 7] {
            let d = (s + k) % n;
            net.send_message(NodeId::new(s as u32), NodeId::new(d as u32), 10);
            sent += 1;
        }
    }
    assert!(net.run_until_quiescent(300_000), "all retries must drain");
    let log = net.take_delivery_log();
    assert_eq!(log.len(), sent, "exactly-once despite faults");
    assert!(log.iter().all(|m| !m.corrupt), "FCR data integrity");
    assert_eq!(net.counters().corrupt_payload_delivered, 0);
    assert!(
        net.counters().flits_corrupted > 0,
        "the fault model must actually have fired"
    );
    assert!(net.counters().kills_fault > 0, "FCR recovery exercised");
}

/// Plain CR (no fault detection) is the negative control: the same
/// transient faults leak corrupted payloads to receivers.
#[test]
fn cr_without_detection_delivers_corrupt_data() {
    let mut faults = FaultModel::new();
    faults.set_transient_rate(5e-3);
    let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr) // no detection
        .faults(faults)
        .warmup(0)
        .seed(17)
        .build();
    let n = net.topology().num_nodes();
    for s in 0..n {
        for k in [1usize, 5] {
            let d = (s + k) % n;
            net.send_message(NodeId::new(s as u32), NodeId::new(d as u32), 16);
        }
    }
    assert!(net.run_until_quiescent(100_000));
    assert!(
        net.counters().corrupt_payload_delivered > 0,
        "without FCR, corruption reaches the processor"
    );
}

/// FCR with a permanent (dead) link: adaptive retries route around it
/// and every message is still delivered.
#[test]
fn fcr_routes_around_a_dead_link() {
    let topo = KAryNCube::torus(4, 2);
    let mut faults = FaultModel::new();
    // Kill both directions between (0,0) and (1,0).
    let a = topo.node_at(&[0, 0]);
    let b = topo.node_at(&[1, 0]);
    for l in topo.links() {
        if (l.src == a && l.dst == b) || (l.src == b && l.dst == a) {
            faults.kill_link(l.id);
        }
    }
    let mut net = NetworkBuilder::new(topo)
        .routing(RoutingKind::AdaptiveMisroute {
            vcs: 1,
            extra_hops: 6,
        })
        .protocol(ProtocolKind::Fcr)
        .faults(faults)
        .timeout(24)
        .warmup(0)
        .seed(19)
        .build();
    net.set_record_deliveries(true);
    // a -> b traffic must detour.
    for _ in 0..10 {
        net.send_message(a, b, 8);
    }
    assert!(net.run_until_quiescent(100_000));
    let log = net.take_delivery_log();
    assert_eq!(log.len(), 10);
    assert!(log.iter().all(|m| !m.corrupt));
}

/// CR works unchanged on non-cube topologies (hypercube and irregular
/// graph) — the paper's topology-independence claim.
#[test]
fn cr_runs_on_hypercube_and_irregular_graph() {
    let mut net = NetworkBuilder::new(Hypercube::new(4))
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.2)
        .warmup(200)
        .seed(23)
        .build();
    let report = net.run(5_000);
    assert!(!report.deadlocked);
    assert!(report.counters.messages_delivered > 100);

    // A ring with chords; irregular, but strongly connected.
    let graph = GraphTopology::from_undirected_edges(
        8,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 0),
            (0, 4),
            (2, 6),
        ],
    )
    .unwrap();
    let mut net = NetworkBuilder::new(graph)
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(6), 0.15)
        .warmup(200)
        .seed(29)
        .build();
    let report = net.run(5_000);
    assert!(!report.deadlocked);
    assert!(report.counters.messages_delivered > 50);
    assert_eq!(report.counters.corrupt_payload_delivered, 0);
}

/// The path-wide kill scheme works but kills more than source timeouts
/// (the paper's reason for rejecting it).
#[test]
fn path_wide_scheme_kills_more_than_source_timeouts() {
    let build = |path_wide: bool| {
        let mut b = NetworkBuilder::new(KAryNCube::torus(4, 2));
        b.routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .timeout(32)
            // Past saturation: transient stalls abound, which is where
            // router-local detection mistakes slowness for deadlock.
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.6)
            .warmup(500)
            .seed(31);
        if path_wide {
            b.path_wide(32);
        }
        b.build()
    };
    let source_report = build(false).run(15_000);
    let path_report = build(true).run(15_000);
    assert!(!source_report.deadlocked && !path_report.deadlocked);
    assert!(
        path_report.total_kills() > source_report.total_kills(),
        "path-wide: {} vs source: {}",
        path_report.total_kills(),
        source_report.total_kills()
    );
    assert!(path_report.counters.messages_delivered > 0);
}

/// Deterministic reproducibility: same seed, same everything.
#[test]
fn same_seed_same_report() {
    let run = || {
        let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
            .routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.3)
            .seed(1234)
            .build();
        net.run(5_000)
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.counters.messages_delivered,
        b.counters.messages_delivered
    );
    assert_eq!(a.counters.kills_source_timeout, b.counters.kills_source_timeout);
    assert_eq!(a.latency.mean(), b.latency.mean());
}

/// Multiple injection/ejection channels raise peak throughput
/// (Fig. 14(e)/(f) direction).
#[test]
fn interface_bandwidth_raises_throughput() {
    let run = |channels: usize| {
        let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
            .routing(RoutingKind::Adaptive { vcs: 2 })
            .protocol(ProtocolKind::Cr)
            .inject_channels(channels)
            .eject_channels(channels)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.9)
            .warmup(1_000)
            .seed(37)
            .build();
        net.run(10_000).accepted_flits_per_node_cycle
    };
    let single = run(1);
    let multi = run(3);
    assert!(
        multi > single * 1.15,
        "multi-channel {multi:.3} should beat single {single:.3}"
    );
}

/// The RNG seed changes behaviour (sanity check that randomness is
/// actually wired through).
#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
            .routing(RoutingKind::Adaptive { vcs: 1 })
            .protocol(ProtocolKind::Cr)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.3)
            .seed(seed)
            .build();
        net.run(5_000).counters.messages_delivered
    };
    assert_ne!(run(1), run(2));
}

/// SimRng is used, not std randomness: run twice in different process
/// orders — trivially covered by same_seed_same_report; here we check
/// the fault plan determinism composes with the network.
#[test]
fn fault_plans_compose_deterministically() {
    let topo = KAryNCube::torus(4, 2);
    let mut f1 = FaultModel::new();
    let mut f2 = FaultModel::new();
    f1.kill_random_links_connected(&topo, 4, &mut SimRng::from_seed(7))
        .unwrap();
    f2.kill_random_links_connected(&topo, 4, &mut SimRng::from_seed(7))
        .unwrap();
    let run = |faults: FaultModel| {
        let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
            .routing(RoutingKind::AdaptiveMisroute {
                vcs: 1,
                extra_hops: 8,
            })
            .protocol(ProtocolKind::Fcr)
            .faults(faults)
            .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.1)
            .seed(99)
            .build();
        net.run(4_000).counters.messages_delivered
    };
    assert_eq!(run(f1), run(f2));
}

/// A faulty, retransmission-heavy sweep exercises the receiver's
/// defensive bookkeeping: kills race deliveries, so receivers see
/// duplicate completions and discarded partials — and every one of
/// them must be absorbed without breaking exactly-once delivery.
#[test]
fn receiver_bookkeeping_under_faulty_retransmission_sweep() {
    let mut faults = FaultModel::new();
    faults.set_transient_rate(3e-3);
    let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2))
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Fcr)
        .faults(faults)
        .timeout(8) // tight: source timeouts fire alongside fault kills
        .warmup(0)
        .seed(21)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.35)
        .build();
    net.set_record_deliveries(true);
    let report = net.run(6_000);
    assert!(!report.deadlocked);
    assert!(report.counters.retransmissions > 0, "retries must happen");
    assert!(report.counters.kills_fault > 0, "fault kills must happen");

    // The defensive paths actually fired...
    assert!(
        report.counters.partials_discarded > 0,
        "kills reaching ejection must discard partial assemblies"
    );

    // ...and delivery stayed exactly-once per message id, in order.
    let log = net.take_delivery_log();
    let mut seen = std::collections::HashSet::new();
    for m in &log {
        assert!(seen.insert(m.id), "message {:?} delivered twice", m.id);
    }
    assert_eq!(seen.len() as u64, report.counters.messages_delivered);
    assert_eq!(report.counters.corrupt_payload_delivered, 0);

    // Receiver counters aggregate into the report consistently.
    let n = net.topology().num_nodes();
    let mut dup = 0;
    let mut partial = 0;
    let mut pruned = 0;
    for i in 0..n {
        let c = *net.receiver(NodeId::new(i as u32)).counters();
        dup += c.duplicates_dropped;
        partial += c.partials_discarded;
        pruned += c.assemblies_pruned;
    }
    assert_eq!(dup, report.counters.duplicates_dropped);
    assert_eq!(partial, report.counters.partials_discarded);
    // Prune is a backstop: nothing in this run may need it, but the
    // counter must at least be coherent (and never double-reaped).
    assert!(pruned <= report.counters.partials_discarded + report.counters.messages_generated);
}
