//! Live fault churn regression tests (DESIGN.md §13).
//!
//! Churn events fire at cycle boundaries as serial orchestrator code
//! shared by every stepper, so the dense reference, the serial
//! active-set stepper, and the sharded stepper must stay
//! byte-identical under any kill/revive schedule. These tests pin the
//! specific hazards churn introduced:
//!
//! * the sharded arrivals gate must re-read the *live* dead-link count
//!   (a run that starts fault-free and loses a link mid-run flips from
//!   the parallel arrivals path to the serial fallback);
//! * fast-forward must treat the next churn entry as a wake source and
//!   never jump past a scheduled event, even on a totally idle fabric;
//! * a revive must re-wake the upstream router so a worm parked behind
//!   the dead port resumes under the active scheduler;
//! * after a kill-and-revive storm drains, no credits leak: every
//!   node-port credit counter is back at `buffer_depth +
//!   channel_latency`.

use cr_core::{NetworkBuilder, ProtocolKind, RoutingKind};
use cr_faults::ChurnSchedule;
use cr_sim::trace::Event;
use cr_sim::{Cycle, NodeId, PortId, VcId};
use cr_topology::{KAryNCube, Topology};
use cr_traffic::{LengthDistribution, TrafficPattern};

/// A mid-sized torus link chosen from the topology's own link table,
/// so the id is valid whatever the id-assignment scheme.
fn nth_link(topo: &dyn Topology, n: usize) -> cr_sim::LinkId {
    topo.links()[n].id
}

/// Builds the standard churn test fixture: 4x4 torus, FCR with
/// misrouting (the protocol that detects faults, so dead links
/// actually matter to the arrivals phase), uniform traffic.
fn fcr_builder(seed: u64) -> NetworkBuilder {
    let mut b = NetworkBuilder::new(KAryNCube::torus(4, 2));
    b.routing(RoutingKind::AdaptiveMisroute {
        vcs: 1,
        extra_hops: 4,
    })
    .protocol(ProtocolKind::Fcr)
    .warmup(0)
    .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(8), 0.2)
    .trace(4096)
    .seed(seed);
    b
}

/// A run that starts fault-free and loses links mid-run must stay
/// byte-identical across the dense, serial-active, and sharded
/// steppers. This is the regression test for the sharded arrivals
/// gate: at churn time `num_dead_links` flips from 0 to nonzero under
/// a fault-detecting protocol, so the parallel arrivals path must hand
/// over to the serial fallback on exactly the right cycle.
#[test]
fn mid_run_kill_is_stepper_identical() {
    let topo = KAryNCube::torus(4, 2);
    let mut schedule = ChurnSchedule::new();
    schedule
        .kill_link(Cycle::new(200), nth_link(&topo, 5))
        .kill_link(Cycle::new(350), nth_link(&topo, 17))
        .revive_link(Cycle::new(600), nth_link(&topo, 5))
        .revive_link(Cycle::new(700), nth_link(&topo, 17));

    let build = || {
        let mut b = fcr_builder(0xC0);
        b.churn(schedule.clone());
        b
    };

    let mut dense = build().build();
    dense.set_reference_stepper(true);
    let d = dense.run(1200).to_json();

    let mut serial = build().build();
    assert_eq!(serial.num_shards(), 1);
    let s = serial.run(1200).to_json();

    assert!(d == s, "dense vs serial under churn:\n{d}\n{s}");

    for shards in [2usize, 4] {
        let mut sharded = build().shards(shards).build();
        assert!(sharded.num_shards() > 1);
        sharded.set_shard_threads(Some(4));
        let p = sharded.run(1200).to_json();
        assert!(
            s == p,
            "serial vs shards={shards} under churn:\n{s}\n{p}"
        );
        assert_eq!(serial.now(), sharded.now());
        assert_eq!(
            serial.take_trace_events(),
            sharded.take_trace_events(),
            "shards={shards}: trace streams differ"
        );
        // Re-arm the serial events for the next shard count.
        drop(serial);
        serial = build().build();
        serial.run(1200);
    }
}

/// Fast-forward must never sleep past a scheduled churn event. On a
/// totally idle network (no sources, nothing in flight) the active
/// stepper jumps straight between wake sources — pending churn has to
/// be one of them, and the report must show each event applied at
/// exactly its scheduled cycle.
#[test]
fn fast_forward_never_skips_churn_events() {
    let topo = KAryNCube::torus(4, 2);
    let link = nth_link(&topo, 3);
    let mut schedule = ChurnSchedule::new();
    schedule
        .kill_link(Cycle::new(500), link)
        .revive_link(Cycle::new(1500), link);

    let mut b = NetworkBuilder::new(KAryNCube::torus(4, 2));
    b.routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Fcr)
        .warmup(0)
        .trace(64)
        .seed(7)
        .churn(schedule);
    let mut net = b.build();
    assert!(!net.is_reference_stepper(), "must exercise fast-forward");

    let report = net.run(3000);
    assert_eq!(net.now(), Cycle::new(3000));

    // The effective apply cycle recorded in the report equals the
    // scheduled cycle — the jump clamped to the event, stepped it, and
    // only then resumed skipping.
    assert_eq!(report.churn.events.len(), 2);
    assert_eq!(report.churn.events[0].at, 500);
    assert_eq!(report.churn.events[0].kind, "kill_link");
    assert_eq!(report.churn.events[0].links_killed, 1);
    assert!(report.churn.events[0].drained, "idle kill drains instantly");
    assert_eq!(report.churn.events[0].time_to_drain, 0);
    assert_eq!(report.churn.events[1].at, 1500);
    assert_eq!(report.churn.events[1].kind, "revive_link");
    assert_eq!(report.churn.events[1].links_revived, 1);

    // And the trace stream carries the structured events at the same
    // cycles.
    let events = net.take_trace_events();
    let churn_events: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, Event::LinkKilled { .. } | Event::LinkRevived { .. }))
        .collect();
    assert_eq!(churn_events.len(), 2);
    assert!(
        matches!(churn_events[0], Event::LinkKilled { at, link: l } if *at == Cycle::new(500) && *l == link)
    );
    assert!(
        matches!(churn_events[1], Event::LinkRevived { at, link: l } if *at == Cycle::new(1500) && *l == link)
    );
}

/// A no-op schedule entry (reviving a live link) fires, is reported,
/// and changes nothing — the network must match a churn-free twin
/// byte-for-byte except for the churn block itself.
#[test]
fn no_op_revive_leaves_run_unchanged() {
    let topo = KAryNCube::torus(4, 2);
    let mut schedule = ChurnSchedule::new();
    schedule.revive_link(Cycle::new(100), nth_link(&topo, 2));

    let mut plain = fcr_builder(0xAB).build();
    let mut churned = {
        let mut b = fcr_builder(0xAB);
        b.churn(schedule);
        b.build()
    };
    let a = plain.run(800);
    let b = churned.run(800);
    assert_eq!(b.churn.events.len(), 1);
    assert_eq!(b.churn.events[0].links_revived, 0, "no-op must not count");
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.latency.count(), b.latency.count());
    assert_eq!(
        plain.take_trace_events(),
        churned.take_trace_events(),
        "a no-op revive must not perturb the protocol event stream"
    );
}

/// Kill-and-revive storm under FCR with scheduled traffic: after the
/// storm passes and the network drains, every message was delivered
/// exactly once, nothing is left in flight, and every node-port
/// credit counter is back at full (`buffer_depth + channel_latency`)
/// — the zero-leaked-credits invariant.
#[test]
fn storm_drains_exactly_once_with_zero_leaked_credits() {
    let topo = KAryNCube::torus(4, 2);
    let mut schedule = ChurnSchedule::new();
    for (i, n) in [3usize, 9, 14, 21].iter().enumerate() {
        let at = 60 + 40 * i as u64;
        schedule.kill_link(Cycle::new(at), nth_link(&topo, *n));
        schedule.revive_link(Cycle::new(at + 300), nth_link(&topo, *n));
    }

    let mut b = NetworkBuilder::new(KAryNCube::torus(4, 2));
    b.routing(RoutingKind::AdaptiveMisroute {
        vcs: 1,
        extra_hops: 4,
    })
    .protocol(ProtocolKind::Fcr)
    .warmup(0)
    .trace(1 << 14)
    .seed(0x57)
    .churn(schedule);
    let mut net = b.build();
    net.set_record_deliveries(true);

    // Scheduled traffic (not Bernoulli) so the offered set is finite
    // and exactly-once is checkable: waves of messages injected
    // throughout the storm window (kills at 60..180, revives at
    // 360..480), so traffic is alive across every event.
    let mut events = Vec::new();
    for wave in 0..7u64 {
        for src in 0..16u32 {
            events.push(cr_traffic::TraceEvent {
                at: Cycle::new(wave * 100),
                src: NodeId::new(src),
                dst: NodeId::new((src + 1 + 5 * (wave as u32 % 3)) % 16),
                length: 8,
            });
        }
    }
    let offered = events.len() as u64;
    net.schedule_trace(&cr_traffic::Trace::from_events(events));

    assert!(
        net.run_until_quiescent(60_000),
        "storm run failed to drain: {} flits in flight at {}",
        net.flits_in_flight(),
        net.now()
    );

    // Exactly once: every offered message delivered, no duplicates
    // accepted. Message ids are dense and monotonic, so the delivered
    // set must be exactly 0..offered.
    assert_eq!(net.counters().messages_generated, offered);
    let log = net.take_delivery_log();
    let mut delivered: Vec<_> = log.iter().map(|d| d.id.as_u64()).collect();
    delivered.sort_unstable();
    let dups = delivered.windows(2).filter(|w| w[0] == w[1]).count();
    assert_eq!(dups, 0, "duplicate deliveries reached a receiver");
    assert_eq!(
        delivered,
        (0..offered).collect::<Vec<_>>(),
        "delivered set != offered set"
    );

    // Every churn event's affected messages eventually drained.
    let report = net.report();
    assert_eq!(report.churn.events.len(), 8);
    assert!(
        report.churn.events.iter().all(|e| e.drained),
        "undrained churn event: {report}"
    );
    assert_eq!(report.flits_in_flight, 0);

    // Zero leaked credits: with the fabric empty, every node-port
    // output credit counter is back at its full value.
    let full = net.config().buffer_depth + net.config().channel_latency as usize;
    for n in 0..16u32 {
        let node = NodeId::new(n);
        let router = net.router(node);
        for p in 0..net.topology().num_ports(node) {
            let port = PortId::new(p as u16);
            let got = router.credits(port, VcId::new(0));
            assert_eq!(
                got, full,
                "node {n} port {p}: {got} credits after drain, expected {full}"
            );
        }
    }
}
