//! Property: the active-set scheduler never loses a scheduled
//! wake-up.
//!
//! Random small networks — random protocol, routing, timeout,
//! retransmission scheme and message plan — are drained to quiescence
//! twice, once with the default active-set stepper (which fast-forwards
//! over idle cycles) and once with the dense reference stepper. A lost
//! wake-up (an injector sleeping through its backoff resume, a link
//! arrival never scanned, a router left out of a phase) would make the
//! runs diverge: a different drain outcome, a different final clock,
//! or a different report. `cr_sim::check` shrinks any counterexample.

use cr_core::{Network, NetworkBuilder, ProtocolKind, RetransmitScheme, RoutingKind};
use cr_sim::check::{check, Config, Source};
use cr_sim::NodeId;
use cr_topology::KAryNCube;

/// Builds a random tiny network plus a message plan from the tape.
fn random_case(src: &mut Source<'_>) -> (NetworkBuilder, Vec<(u32, u32, u32)>) {
    let mut b = NetworkBuilder::new(KAryNCube::torus(4, 2));
    let vcs = src.usize_in(1..3);
    if src.bool_any() {
        b.routing(RoutingKind::Adaptive { vcs });
    } else {
        b.routing(RoutingKind::AdaptiveMisroute {
            vcs,
            extra_hops: src.usize_in(0..5) as u16,
        });
    }
    b.protocol(if src.bool_any() {
        ProtocolKind::Fcr
    } else {
        ProtocolKind::Cr
    });
    b.timeout(src.u64_in(8..64));
    if src.bool_any() {
        b.retransmit(RetransmitScheme::StaticGap {
            gap: src.u64_in(1..200),
        });
    } else {
        b.retransmit(RetransmitScheme::ExponentialBackoff {
            slot: src.u64_in(1..32),
            ceiling: src.u32_in(1..11),
        });
    }
    if src.bool_any() {
        b.path_wide(src.u64_in(16..128));
    }
    b.channel_latency(src.u64_in(1..4));
    b.warmup(0);
    b.seed(src.u64_any());

    let n_msgs = src.usize_in(1..9);
    let mut plan = Vec::with_capacity(n_msgs);
    for _ in 0..n_msgs {
        let from = src.usize_in(0..16) as u32;
        let to = (from + src.usize_in(1..16) as u32) % 16;
        let len = src.usize_in(2..25) as u32;
        plan.push((from, to, len));
    }
    (b, plan)
}

fn drain(net: &mut Network, plan: &[(u32, u32, u32)]) -> (bool, u64, String) {
    for &(from, to, len) in plan {
        net.send_message(NodeId::new(from), NodeId::new(to), len);
    }
    let done = net.run_until_quiescent(60_000);
    (done, net.now().as_u64(), net.report().to_json())
}

#[test]
fn random_networks_never_lose_a_wakeup() {
    check("scheduler_wakeup", Config::cases(40), |src| {
        let (mut b, plan) = random_case(src);
        let mut active = b.build();
        let mut dense = b.build();
        dense.set_reference_stepper(true);

        let (a_done, a_now, a_json) = drain(&mut active, &plan);
        let (d_done, d_now, d_json) = drain(&mut dense, &plan);

        assert_eq!(a_done, d_done, "drain outcomes diverge");
        assert_eq!(a_now, d_now, "final clocks diverge");
        assert!(
            a_json == d_json,
            "reports diverge\nactive:\n{a_json}\ndense:\n{d_json}"
        );
        if a_done {
            assert_eq!(active.flits_in_flight(), 0, "drained but flits remain");
        }
    });
}

/// Switching steppers mid-run is legal: the active sets are maintained
/// in both modes, so a network stepped densely for a while must
/// continue — and finish — identically under the active scheduler.
#[test]
fn mid_run_stepper_switch_is_seamless() {
    check("scheduler_switch", Config::cases(20), |src| {
        let (mut b, plan) = random_case(src);
        let mut active = b.build();
        let mut mixed = b.build();
        mixed.set_reference_stepper(true);

        for &(from, to, len) in &plan {
            active.send_message(NodeId::new(from), NodeId::new(to), len);
            mixed.send_message(NodeId::new(from), NodeId::new(to), len);
        }
        // Dense prefix of random length, then hand over to the
        // active-set stepper for the rest of the drain.
        let prefix = src.usize_in(0..120) as u64;
        let a_done = active.run_until_quiescent(60_000);
        let mut steps = 0;
        while steps < prefix && !mixed.is_deadlocked() && mixed.flits_in_flight() > 0 {
            mixed.step();
            steps += 1;
        }
        mixed.set_reference_stepper(false);
        // Align the cycle budget so both runs cap out at the same end
        // cycle regardless of how long the dense prefix was.
        let m_done = mixed.run_until_quiescent(60_000u64.saturating_sub(mixed.now().as_u64()));

        assert_eq!(a_done, m_done, "drain outcomes diverge after switch");
        let a = active.report().to_json();
        let m = mixed.report().to_json();
        assert!(a == m, "reports diverge after switch\nactive:\n{a}\nmixed:\n{m}");
    });
}
