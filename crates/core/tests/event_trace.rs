//! Tests of the structured event-trace layer: zero-impact when off,
//! complete and internally consistent when on.

use cr_core::{NetworkBuilder, ProtocolKind, RetransmitScheme, RoutingKind};
use cr_faults::FaultModel;
use cr_sim::trace::Event;
use cr_topology::{KAryNCube, Topology};
use cr_traffic::{LengthDistribution, TrafficPattern};

/// A configuration hot enough to exercise the full protocol: tight
/// timeout, static retransmit gap, moderate load.
fn stressed_builder(seed: u64) -> NetworkBuilder {
    let mut b = NetworkBuilder::new(KAryNCube::torus(4, 2));
    b.routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Cr)
        .retransmit(RetransmitScheme::StaticGap { gap: 4 })
        .timeout(8)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.4)
        .warmup(200)
        .seed(seed);
    b
}

#[test]
fn tracing_is_off_by_default_and_changes_nothing_observable() {
    let plain = stressed_builder(6).build().run(3_000);
    let traced = stressed_builder(6).trace(1 << 20).build().run(3_000);

    // Everything the figures plot is identical...
    assert_eq!(plain.counters, traced.counters);
    assert_eq!(plain.latency_percentiles, traced.latency_percentiles);
    assert_eq!(plain.accepted_flits_per_node_cycle, traced.accepted_flits_per_node_cycle);
    assert_eq!(plain.channel_utilization_mean, traced.channel_utilization_mean);
    assert_eq!(plain.flits_in_flight, traced.flits_in_flight);
    // ...and the per-link stall counters are maintained either way.
    assert_eq!(plain.trace.stall_total_cycles(), traced.trace.stall_total_cycles());
    assert_eq!(plain.trace.link_flits_forwarded, traced.trace.link_flits_forwarded);
    // Only the sink state differs.
    assert!(!plain.trace.enabled);
    assert_eq!(plain.trace.events_emitted, 0);
    assert!(traced.trace.enabled);
    assert!(traced.trace.events_emitted > 0);
}

#[test]
fn traced_run_emits_the_full_protocol_lifecycle() {
    let mut net = stressed_builder(6).trace(1 << 20).build();
    let report = net.run(3_000);
    assert!(report.counters.retransmissions > 0, "config must stress kills");
    let stats = net.trace_stats();
    assert_eq!(stats.dropped, 0, "ring sized to keep everything");

    let events = net.take_trace_events();
    assert_eq!(events.len() as u64, stats.emitted);
    let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count() as u64;

    // One Deliver per delivered message, one Kill per kill, one
    // RetransmitScheduled per retransmission started.
    assert_eq!(count("deliver"), report.counters.messages_delivered);
    assert_eq!(count("kill"), report.total_kills());
    assert!(count("retransmit_scheduled") >= report.counters.retransmissions);
    // Every attempt in flight began with an Inject; retries re-inject.
    assert!(count("inject") >= report.counters.messages_delivered);
    assert!(count("commit") > 0);

    // Events are time-ordered (the ring preserves emission order and
    // emission follows the cycle loop) — except LinkStall, which is
    // stamped with its streak's *start* cycle.
    let mut last = 0;
    for e in &events {
        if matches!(e, Event::LinkStall { .. }) {
            continue;
        }
        assert!(e.at().as_u64() >= last, "out of order: {e:?}");
        last = e.at().as_u64();
    }

    // Deliver events carry coherent payloads.
    for e in &events {
        if let Event::Deliver { attempts, latency, .. } = e {
            assert!(*attempts >= 1);
            assert!(*latency > 0);
        }
    }
}

#[test]
fn stall_attribution_sums_are_consistent() {
    let mut net = stressed_builder(9).trace(1 << 20).build();
    let report = net.run(3_000);

    // The report's roll-up equals the sum over per-link counters.
    let per_link = net.link_stall_stats();
    assert_eq!(per_link.len() as u64, report.trace.links);
    let busy: u64 = per_link.iter().map(|(_, s)| s.stall_busy).sum();
    let dead: u64 = per_link.iter().map(|(_, s)| s.stall_dead_link).sum();
    let bp: u64 = per_link.iter().map(|(_, s)| s.stall_backpressure).sum();
    let fwd: u64 = per_link.iter().map(|(_, s)| s.flits_forwarded).sum();
    assert_eq!(report.trace.stall_busy_cycles, busy);
    assert_eq!(report.trace.stall_dead_link_cycles, dead);
    assert_eq!(report.trace.stall_backpressure_cycles, bp);
    assert_eq!(report.trace.link_flits_forwarded, fwd);
    let max = per_link.iter().map(|(_, s)| s.stall_total()).max().unwrap();
    assert_eq!(report.trace.max_link_stall_cycles, max);
    assert!(busy + bp > 0, "a stressed run must stall somewhere");

    // Finished LinkStall streaks never account for more cycles than
    // the counters saw (streaks still open at run end are uncounted).
    let events = net.take_trace_events();
    let streak_cycles: u64 = events
        .iter()
        .filter_map(|e| match e {
            Event::LinkStall { cycles, .. } => Some(*cycles),
            _ => None,
        })
        .sum();
    assert!(streak_cycles <= busy + dead + bp);
    assert!(streak_cycles > 0, "stalls must surface as streak events");
}

#[test]
fn diagnosed_dead_links_stall_traffic_around_them_not_into_them() {
    // Kill one link. Routing knows (diagnosed-fault model) and never
    // allocates the dead output, so the dead link itself accumulates
    // no stalls at all — the congestion shows up as busy/backpressure
    // stalls on the live links detouring around it. (The DeadLink
    // attribution covers worms allocated *before* diagnosis; the
    // router unit tests exercise that path directly.)
    let topo = KAryNCube::torus(4, 2);
    let dead = topo.links()[0].id;
    let mut faults = FaultModel::new();
    faults.kill_link(dead);
    let mut net = stressed_builder(11).faults(faults).trace(1 << 20).build();
    let report = net.run(3_000);
    assert!(!report.deadlocked);
    assert!(report.counters.messages_delivered > 0);
    let per_link = net.link_stall_stats();
    let on_dead = per_link.iter().find(|(id, _)| *id == dead).unwrap();
    assert_eq!(on_dead.1.flits_forwarded, 0, "nothing crosses a dead link");
    assert_eq!(on_dead.1.stall_total(), 0, "nothing is ever parked at it");
    assert_eq!(report.trace.stall_dead_link_cycles, 0);
    assert!(
        report.trace.stall_busy_cycles + report.trace.stall_backpressure_cycles > 0,
        "the detour congestion lands on live links"
    );
}

#[test]
fn fcr_corruption_detection_is_traced() {
    let mut faults = FaultModel::new();
    faults.set_transient_rate(0.002);
    let mut net = NetworkBuilder::new(KAryNCube::torus(4, 2));
    let mut net = net
        .routing(RoutingKind::Adaptive { vcs: 1 })
        .protocol(ProtocolKind::Fcr)
        .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.3)
        .warmup(200)
        .seed(13)
        .faults(faults)
        .trace(1 << 20)
        .build();
    let report = net.run(3_000);
    assert!(report.counters.kills_fault > 0, "transient faults must fire");
    let events = net.take_trace_events();
    let detected = events
        .iter()
        .filter(|e| e.kind() == "corruption_detected")
        .count() as u64;
    assert_eq!(detected, report.counters.kills_fault);
}

#[test]
fn ring_capacity_bounds_memory_and_counts_drops() {
    let mut net = stressed_builder(6).trace(64).build();
    net.run(3_000);
    let stats = net.trace_stats();
    assert!(stats.dropped > 0, "a tiny ring must overflow under stress");
    let events = net.take_trace_events();
    assert_eq!(events.len(), 64);
    assert_eq!(stats.emitted, stats.dropped + 64);
}
