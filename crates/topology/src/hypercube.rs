//! Binary n-cube (hypercube) topology.

use crate::topology::Topology;
use cr_sim::{LinkId, NodeId, PortId};

/// A binary hypercube with `2^n` nodes.
///
/// Port `d` connects a node to the neighbor whose address differs in bit
/// `d`. Hypercubes appear in the paper's related-work discussion (most
/// prior fault-tolerant routing targeted packet-switched hypercubes);
/// including them exercises CR's topology-independence claim.
///
/// # Examples
///
/// ```
/// use cr_topology::{Hypercube, Topology};
/// use cr_sim::NodeId;
///
/// let h = Hypercube::new(4);
/// assert_eq!(h.num_nodes(), 16);
/// assert_eq!(h.distance(NodeId::new(0b0000), NodeId::new(0b1011)), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypercube {
    dims: usize,
}

impl Hypercube {
    /// Creates an `n`-dimensional hypercube.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is zero or greater than 20 (over a million
    /// nodes is beyond simulation scale).
    pub fn new(dims: usize) -> Self {
        assert!((1..=20).contains(&dims), "dims {dims} out of range 1..=20");
        Hypercube { dims }
    }

    /// The number of dimensions `n`.
    pub fn dims(&self) -> usize {
        self.dims
    }
}

impl Topology for Hypercube {
    fn num_nodes(&self) -> usize {
        1 << self.dims
    }

    fn num_ports(&self, node: NodeId) -> usize {
        assert!(node.index() < self.num_nodes(), "node out of range");
        self.dims
    }

    fn neighbor(&self, node: NodeId, port: PortId) -> Option<NodeId> {
        if port.index() >= self.dims || node.index() >= self.num_nodes() {
            return None;
        }
        Some(NodeId::new((node.index() ^ (1 << port.index())) as u32))
    }

    fn arrival_port(&self, node: NodeId, port: PortId) -> Option<PortId> {
        self.neighbor(node, port)?;
        // The reverse channel flips the same bit.
        Some(port)
    }

    fn link(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        self.neighbor(node, port)?;
        Some(LinkId::new((node.index() * self.dims + port.index()) as u32))
    }

    fn num_links(&self) -> usize {
        self.num_nodes() * self.dims
    }

    fn distance(&self, src: NodeId, dst: NodeId) -> usize {
        (src.index() ^ dst.index()).count_ones() as usize
    }

    fn minimal_ports_into(&self, node: NodeId, dst: NodeId, out: &mut Vec<PortId>) {
        let diff = node.index() ^ dst.index();
        for d in 0..self.dims {
            if diff & (1 << d) != 0 {
                out.push(PortId::new(d as u16));
            }
        }
    }

    fn diameter(&self) -> usize {
        self.dims
    }

    fn label(&self) -> String {
        format!("{}-dimensional hypercube", self.dims)
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_flip_single_bits() {
        let h = Hypercube::new(3);
        let n = NodeId::new(0b101);
        assert_eq!(h.neighbor(n, PortId::new(0)), Some(NodeId::new(0b100)));
        assert_eq!(h.neighbor(n, PortId::new(1)), Some(NodeId::new(0b111)));
        assert_eq!(h.neighbor(n, PortId::new(2)), Some(NodeId::new(0b001)));
        assert_eq!(h.neighbor(n, PortId::new(3)), None);
    }

    #[test]
    fn minimal_ports_are_differing_bits() {
        let h = Hypercube::new(4);
        let ports = h.minimal_ports(NodeId::new(0b0000), NodeId::new(0b1010));
        assert_eq!(ports, vec![PortId::new(1), PortId::new(3)]);
    }

    #[test]
    fn minimal_ports_reduce_distance_everywhere() {
        let h = Hypercube::new(4);
        for a in 0..16u32 {
            for b in 0..16u32 {
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                for p in h.minimal_ports(a, b) {
                    let n = h.neighbor(a, p).unwrap();
                    assert_eq!(h.distance(n, b) + 1, h.distance(a, b));
                }
            }
        }
    }

    #[test]
    fn link_count_and_diameter() {
        let h = Hypercube::new(5);
        assert_eq!(h.num_links(), 32 * 5);
        assert_eq!(h.links().len(), h.num_links());
        assert_eq!(h.diameter(), 5);
        assert_eq!(h.label(), "5-dimensional hypercube");
    }

    #[test]
    #[should_panic]
    fn zero_dims_rejected() {
        let _ = Hypercube::new(0);
    }
}
