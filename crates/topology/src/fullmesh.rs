//! Fully connected (complete-graph) topology: every node has a direct
//! channel to every other node.

use crate::topology::Topology;
use cr_sim::{LinkId, NodeId, PortId};

/// A full mesh of `n` nodes — the complete graph `K_n`, with one
/// unidirectional channel per ordered node pair.
///
/// Diameter 1, so every minimal path is the single direct channel;
/// adaptivity on a full mesh therefore means *non-minimal* one-hop
/// detours through an intermediate node, which is exactly the shape of
/// the zero-VC ordered-detour scheme compared against CR in the
/// `showdown` experiment.
///
/// # Port numbering
///
/// Node `i` has `n - 1` ports in destination order with `i` itself
/// skipped: port `p` reaches node `p` when `p < i`, node `p + 1`
/// otherwise. A channel from `i` arrives at `j` on the port `j` uses
/// to reach `i` — the pairing is symmetric.
///
/// # Examples
///
/// ```
/// use cr_topology::{FullMesh, Topology};
/// use cr_sim::{NodeId, PortId};
///
/// let t = FullMesh::new(16);
/// assert_eq!(t.num_nodes(), 16);
/// assert_eq!(t.num_links(), 16 * 15);
/// assert_eq!(t.diameter(), 1);
/// // Node 3's port 7 skips over node 3 itself: it reaches node 8.
/// assert_eq!(t.neighbor(NodeId::new(3), PortId::new(7)), Some(NodeId::new(8)));
/// // Exactly one minimal port toward any destination — the direct one.
/// assert_eq!(t.minimal_ports(NodeId::new(3), NodeId::new(8)), vec![PortId::new(7)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullMesh {
    nodes: usize,
}

impl FullMesh {
    /// Creates a full mesh over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes` is in `2..=4096` (beyond that the O(n²)
    /// link count dwarfs anything the simulator can usefully run).
    pub fn new(nodes: usize) -> Self {
        assert!(
            (2..=4096).contains(&nodes),
            "full-mesh size {nodes} out of range 2..=4096"
        );
        FullMesh { nodes }
    }

    /// The port on `node` whose channel reaches `dst` directly.
    ///
    /// # Panics
    ///
    /// Panics if `node == dst` or either id is out of range.
    pub fn port_toward(&self, node: NodeId, dst: NodeId) -> PortId {
        let (i, j) = (node.index(), dst.index());
        assert!(i < self.nodes && j < self.nodes && i != j, "bad pair {i} -> {j}");
        PortId::new(if j < i { j } else { j - 1 } as u16)
    }
}

impl Topology for FullMesh {
    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn num_ports(&self, node: NodeId) -> usize {
        assert!(node.index() < self.nodes, "node {} out of range", node.index());
        self.nodes - 1
    }

    fn neighbor(&self, node: NodeId, port: PortId) -> Option<NodeId> {
        let (i, p) = (node.index(), port.index());
        if i >= self.nodes || p >= self.nodes - 1 {
            return None;
        }
        Some(NodeId::new(if p < i { p } else { p + 1 } as u32))
    }

    fn arrival_port(&self, node: NodeId, port: PortId) -> Option<PortId> {
        let j = self.neighbor(node, port)?;
        Some(self.port_toward(j, node))
    }

    fn link(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        self.neighbor(node, port)?;
        Some(LinkId::new((node.index() * (self.nodes - 1) + port.index()) as u32))
    }

    fn num_links(&self) -> usize {
        self.nodes * (self.nodes - 1)
    }

    fn distance(&self, src: NodeId, dst: NodeId) -> usize {
        assert!(
            src.index() < self.nodes && dst.index() < self.nodes,
            "node out of range"
        );
        usize::from(src != dst)
    }

    fn minimal_ports_into(&self, node: NodeId, dst: NodeId, out: &mut Vec<PortId>) {
        if node != dst {
            out.push(self.port_toward(node, dst));
        }
    }

    fn supports_dimension_order(&self) -> bool {
        false
    }

    fn diameter(&self) -> usize {
        1
    }

    fn label(&self) -> String {
        format!("{}-node full mesh", self.nodes)
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_map_is_a_bijection() {
        let t = FullMesh::new(9);
        for i in 0..9u32 {
            let node = NodeId::new(i);
            let mut seen: Vec<NodeId> = (0..t.num_ports(node))
                .map(|p| t.neighbor(node, PortId::new(p as u16)).unwrap())
                .collect();
            seen.sort();
            let expect: Vec<NodeId> =
                (0..9).filter(|&j| j != i).map(NodeId::new).collect();
            assert_eq!(seen, expect);
        }
    }

    #[test]
    fn arrival_ports_are_symmetric() {
        let t = FullMesh::new(7);
        for l in t.links() {
            assert_eq!(t.neighbor(l.dst, l.dst_port), Some(l.src));
            assert_eq!(t.arrival_port(l.dst, l.dst_port), Some(l.src_port));
        }
    }

    #[test]
    fn single_minimal_port_everywhere() {
        let t = FullMesh::new(12);
        for i in 0..12u32 {
            for j in 0..12u32 {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                let ports = t.minimal_ports(a, b);
                if i == j {
                    assert!(ports.is_empty());
                } else {
                    assert_eq!(ports, vec![t.port_toward(a, b)]);
                    assert_eq!(t.neighbor(a, ports[0]), Some(b));
                }
            }
        }
    }

    #[test]
    fn counts_and_diameter() {
        for n in [2usize, 3, 16, 64] {
            let t = FullMesh::new(n);
            assert_eq!(t.num_links(), n * (n - 1));
            assert_eq!(t.links().len(), t.num_links());
            assert_eq!(t.diameter(), 1);
        }
        assert_eq!(FullMesh::new(16).label(), "16-node full mesh");
    }

    #[test]
    #[should_panic]
    fn degenerate_mesh_rejected() {
        let _ = FullMesh::new(1);
    }
}
