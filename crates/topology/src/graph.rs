//! Arbitrary-graph topologies.
//!
//! CR's deadlock-recovery argument never inspects the channel dependency
//! graph, so it applies to *any* strongly-connected network. This module
//! lets the test-suite and examples exercise that claim on irregular
//! graphs where cycle-free routing restrictions would be hard to derive.

use crate::topology::Topology;
use cr_sim::{LinkId, NodeId, PortId};
use std::collections::VecDeque;

/// An arbitrary directed network built from an adjacency list, with
/// minimal-path structure precomputed by breadth-first search.
///
/// # Examples
///
/// Build a 4-node ring with an extra chord:
///
/// ```
/// use cr_topology::{GraphTopology, Topology};
/// use cr_sim::NodeId;
///
/// let g = GraphTopology::from_edges(4, &[
///     (0, 1), (1, 2), (2, 3), (3, 0),
///     (1, 0), (2, 1), (3, 2), (0, 3),
///     (0, 2), (2, 0),
/// ]).unwrap();
/// assert_eq!(g.distance(NodeId::new(0), NodeId::new(2)), 1);
/// assert!(!g.supports_dimension_order());
/// ```
#[derive(Debug, Clone)]
pub struct GraphTopology {
    /// adjacency[node] = list of neighbor node ids, index = output port.
    adjacency: Vec<Vec<NodeId>>,
    /// arrival[node][port] = input port at the neighbor.
    arrival: Vec<Vec<PortId>>,
    /// link_base[node] + port = dense link id.
    link_base: Vec<u32>,
    num_links: usize,
    /// dist[src][dst], by BFS.
    dist: Vec<Vec<u32>>,
}

/// Error building a [`GraphTopology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node `>= num_nodes`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
    },
    /// The same directed edge was listed twice.
    DuplicateEdge {
        /// Source of the duplicated edge.
        from: usize,
        /// Destination of the duplicated edge.
        to: usize,
    },
    /// Some node cannot reach some other node.
    NotStronglyConnected {
        /// A node from which `to` is unreachable.
        from: usize,
        /// The unreachable node.
        to: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node } => write!(f, "node {node} out of range"),
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            GraphError::NotStronglyConnected { from, to } => {
                write!(f, "graph not strongly connected: {to} unreachable from {from}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl GraphTopology {
    /// Builds a topology from directed edges `(from, to)`.
    ///
    /// Output port numbers at each node follow the order in which that
    /// node's outgoing edges appear in `edges`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an edge references a node out of
    /// range, an edge is duplicated, or the graph is not strongly
    /// connected (wormhole routing requires every pair to be mutually
    /// reachable).
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        assert!(num_nodes > 0, "graph must have at least one node");
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); num_nodes];
        let mut seen = std::collections::HashSet::new();
        for &(from, to) in edges {
            if from >= num_nodes {
                return Err(GraphError::NodeOutOfRange { node: from });
            }
            if to >= num_nodes {
                return Err(GraphError::NodeOutOfRange { node: to });
            }
            if !seen.insert((from, to)) {
                return Err(GraphError::DuplicateEdge { from, to });
            }
            adjacency[from].push(NodeId::new(to as u32));
        }

        // Input port numbering: at each node, incoming edges get input
        // ports starting after the node's output ports, in edge order.
        // (Distinct numbering avoids aliasing input and output port
        // tables in the router.)
        let mut next_input: Vec<usize> = adjacency.iter().map(|a| a.len()).collect();
        let mut arrival: Vec<Vec<PortId>> = vec![Vec::new(); num_nodes];
        for from in 0..num_nodes {
            for &to in &adjacency[from] {
                let slot = next_input[to.index()];
                next_input[to.index()] += 1;
                arrival[from].push(PortId::new(slot as u16));
            }
        }

        let mut link_base = Vec::with_capacity(num_nodes);
        let mut acc = 0u32;
        for a in &adjacency {
            link_base.push(acc);
            acc += a.len() as u32;
        }
        let num_links = acc as usize;

        // All-pairs BFS distances.
        let mut dist = vec![vec![u32::MAX; num_nodes]; num_nodes];
        for (src, row) in dist.iter_mut().enumerate() {
            row[src] = 0;
            let mut q = VecDeque::new();
            q.push_back(src);
            while let Some(u) = q.pop_front() {
                for &v in &adjacency[u] {
                    let v = v.index();
                    if row[v] == u32::MAX {
                        row[v] = row[u] + 1;
                        q.push_back(v);
                    }
                }
            }
        }
        for (src, row) in dist.iter().enumerate() {
            if let Some(to) = row.iter().position(|&d| d == u32::MAX) {
                return Err(GraphError::NotStronglyConnected { from: src, to });
            }
        }

        Ok(GraphTopology {
            adjacency,
            arrival,
            link_base,
            num_links,
            dist,
        })
    }

    /// Builds a bidirectional topology: every undirected edge `{a, b}`
    /// becomes the two directed channels `a -> b` and `b -> a`.
    ///
    /// # Errors
    ///
    /// Same as [`GraphTopology::from_edges`].
    pub fn from_undirected_edges(
        num_nodes: usize,
        edges: &[(usize, usize)],
    ) -> Result<Self, GraphError> {
        let mut directed = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            directed.push((a, b));
            directed.push((b, a));
        }
        Self::from_edges(num_nodes, &directed)
    }
}

impl Topology for GraphTopology {
    fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    fn num_ports(&self, node: NodeId) -> usize {
        // Output ports are 0..out_degree; input ports were numbered
        // starting at out_degree, so the full port span at this node is
        // out_degree + in_degree. Ports past the outputs have no
        // neighbor (they are input-only) and `neighbor` returns `None`
        // for them.
        self.adjacency[node.index()].len() + self.in_degree(node)
    }

    fn neighbor(&self, node: NodeId, port: PortId) -> Option<NodeId> {
        self.adjacency
            .get(node.index())?
            .get(port.index())
            .copied()
    }

    fn arrival_port(&self, node: NodeId, port: PortId) -> Option<PortId> {
        self.arrival.get(node.index())?.get(port.index()).copied()
    }

    fn link(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        self.neighbor(node, port)?;
        Some(LinkId::new(
            self.link_base[node.index()] + port.index() as u32,
        ))
    }

    fn num_links(&self) -> usize {
        self.num_links
    }

    fn distance(&self, src: NodeId, dst: NodeId) -> usize {
        self.dist[src.index()][dst.index()] as usize
    }

    fn minimal_ports_into(&self, node: NodeId, dst: NodeId, out: &mut Vec<PortId>) {
        if node == dst {
            return;
        }
        let d = self.dist[node.index()][dst.index()];
        for (p, &n) in self.adjacency[node.index()].iter().enumerate() {
            if self.dist[n.index()][dst.index()] + 1 == d {
                out.push(PortId::new(p as u16));
            }
        }
    }

    fn supports_dimension_order(&self) -> bool {
        false
    }

    fn label(&self) -> String {
        format!(
            "irregular graph ({} nodes, {} links)",
            self.num_nodes(),
            self.num_links
        )
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(self.clone())
    }
}

impl GraphTopology {
    fn in_degree(&self, node: NodeId) -> usize {
        self.adjacency
            .iter()
            .flatten()
            .filter(|&&n| n == node)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> GraphTopology {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        GraphTopology::from_undirected_edges(n, &edges).unwrap()
    }

    #[test]
    fn ring_distances() {
        let g = ring(6);
        assert_eq!(g.distance(NodeId::new(0), NodeId::new(3)), 3);
        assert_eq!(g.distance(NodeId::new(0), NodeId::new(5)), 1);
        assert_eq!(g.diameter(), 3);
    }

    #[test]
    fn minimal_ports_reduce_distance() {
        let g = ring(7);
        for a in 0..7u32 {
            for b in 0..7u32 {
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                let ports = g.minimal_ports(a, b);
                if a == b {
                    assert!(ports.is_empty());
                    continue;
                }
                assert!(!ports.is_empty());
                for p in ports {
                    let n = g.neighbor(a, p).unwrap();
                    assert_eq!(g.distance(n, b) + 1, g.distance(a, b));
                }
            }
        }
    }

    #[test]
    fn disconnected_rejected() {
        let err = GraphTopology::from_edges(3, &[(0, 1), (1, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::NotStronglyConnected { .. }));
    }

    #[test]
    fn one_way_reachability_rejected() {
        // 0 -> 1 -> 2 but no way back.
        let err = GraphTopology::from_edges(3, &[(0, 1), (1, 2), (2, 1)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NotStronglyConnected { to: 0, .. }
        ));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let err = GraphTopology::from_edges(2, &[(0, 1), (0, 1), (1, 0)]).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { from: 0, to: 1 });
    }

    #[test]
    fn out_of_range_rejected() {
        let err = GraphTopology::from_edges(2, &[(0, 2)]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 2 });
    }

    #[test]
    fn link_ids_dense_and_unique() {
        let g = ring(5);
        let links = g.links();
        assert_eq!(links.len(), g.num_links());
        let mut ids: Vec<u32> = links.iter().map(|l| l.id.as_u32()).collect();
        ids.sort_unstable();
        let expect: Vec<u32> = (0..g.num_links() as u32).collect();
        assert_eq!(ids, expect);
    }

    #[test]
    fn arrival_ports_unique_per_node() {
        // No two incoming channels may share an input port.
        let g = ring(5);
        let mut seen = std::collections::HashSet::new();
        for l in g.links() {
            assert!(
                seen.insert((l.dst, l.dst_port)),
                "input port collision at {:?}",
                l.dst
            );
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let e = GraphError::NotStronglyConnected { from: 1, to: 2 };
        assert!(e.to_string().contains("unreachable"));
    }
}
