//! The [`Topology`] trait: the contract every network shape satisfies.

use cr_sim::{LinkId, NodeId, PortId};

/// Description of one unidirectional physical channel.
///
/// A flit sent by node `src` on output port `src_port` arrives at node
/// `dst` on input port `dst_port` (ports are symmetric: output port `p`
/// of a node and input port `p` of the same node face the same
/// neighbor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkDesc {
    /// Dense identifier of this channel.
    pub id: LinkId,
    /// Sending node.
    pub src: NodeId,
    /// Output port at the sending node.
    pub src_port: PortId,
    /// Receiving node.
    pub dst: NodeId,
    /// Input port at the receiving node on which flits arrive.
    pub dst_port: PortId,
}

/// A network topology: nodes, ports, links and minimal-path structure.
///
/// Implementations must describe a *strongly connected* directed graph;
/// routing layers rely on `distance` being finite for every pair.
///
/// # Port conventions
///
/// Ports `0..num_ports(node)` are *neighbor* ports. Injection and
/// ejection interfaces are not part of the topology; the network
/// assembly adds them past the neighbor ports.
///
/// For [`KAryNCube`](crate::KAryNCube), dimension `d` uses port `2d` for
/// the positive direction and `2d + 1` for the negative direction, which
/// makes "lowest minimal port" identical to dimension-order routing.
/// Implementations are plain connectivity data, and the sharded
/// stepper shares one topology object across its phase workers, so
/// the trait requires `Send + Sync` (trivially satisfied by every
/// value type here).
pub trait Topology: std::fmt::Debug + Send + Sync {
    /// Total number of nodes.
    fn num_nodes(&self) -> usize;

    /// Number of neighbor ports at `node`.
    fn num_ports(&self, node: NodeId) -> usize;

    /// The neighbor reached from `node` via output port `port`, or
    /// `None` if the port is not connected.
    fn neighbor(&self, node: NodeId, port: PortId) -> Option<NodeId>;

    /// The input port at [`Topology::neighbor`]`(node, port)` on which a
    /// flit sent from `(node, port)` arrives.
    fn arrival_port(&self, node: NodeId, port: PortId) -> Option<PortId>;

    /// Dense identifier of the channel leaving `node` via `port`.
    fn link(&self, node: NodeId, port: PortId) -> Option<LinkId>;

    /// Total number of unidirectional channels.
    fn num_links(&self) -> usize;

    /// Length (in hops) of a shortest path from `src` to `dst`.
    fn distance(&self, src: NodeId, dst: NodeId) -> usize;

    /// Appends to `out` every output port at `node` that lies on some
    /// minimal path toward `dst`. Appends nothing when `node == dst`.
    ///
    /// Ports must be appended in ascending port order, so that
    /// `out.first()` is the dimension-order choice on cube topologies.
    fn minimal_ports_into(&self, node: NodeId, dst: NodeId, out: &mut Vec<PortId>);

    /// Convenience wrapper around [`Topology::minimal_ports_into`]
    /// returning a fresh vector.
    fn minimal_ports(&self, node: NodeId, dst: NodeId) -> Vec<PortId> {
        let mut v = Vec::new();
        self.minimal_ports_into(node, dst, &mut v);
        v
    }

    /// Returns `true` if the channel `(node, port)` is a wraparound
    /// (dateline-crossing) channel.
    ///
    /// Dimension-order routing on tori breaks the cyclic channel
    /// dependency at these channels by switching virtual-channel class,
    /// as in the torus routing chip (Dally & Seitz, reference \[28\] of
    /// the paper). Non-toroidal topologies return `false` everywhere.
    fn is_wraparound(&self, node: NodeId, port: PortId) -> bool {
        let _ = (node, port);
        false
    }

    /// Returns `true` if deterministic dimension-order routing is
    /// defined for this topology (cubes yes, arbitrary graphs no).
    fn supports_dimension_order(&self) -> bool {
        true
    }

    /// Returns `true` if any channel of the topology is a wraparound
    /// channel (i.e. [`Topology::is_wraparound`] holds somewhere).
    ///
    /// Routing functions that split virtual-channel classes at the
    /// dateline use this to decide whether the torus discipline is
    /// needed at all.
    fn has_wraparound(&self) -> bool {
        (0..self.num_nodes()).any(|i| {
            let node = NodeId::new(i as u32);
            (0..self.num_ports(node)).any(|p| self.is_wraparound(node, PortId::new(p as u16)))
        })
    }

    /// Longest shortest-path distance over all node pairs.
    fn diameter(&self) -> usize {
        let n = self.num_nodes();
        let mut best = 0;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    best = best.max(self.distance(NodeId::new(a as u32), NodeId::new(b as u32)));
                }
            }
        }
        best
    }

    /// Largest `num_ports` over all nodes, used to size router tables.
    fn max_ports(&self) -> usize {
        (0..self.num_nodes())
            .map(|i| self.num_ports(NodeId::new(i as u32)))
            .max()
            .unwrap_or(0)
    }

    /// Boundary hint for splitting this fabric into `shards`
    /// contiguous node-id ranges (`shards + 1` nondecreasing values,
    /// first 0 and last `num_nodes`) — the spatial partition the
    /// sharded stepper uses (DESIGN.md §12).
    ///
    /// The default splits node ids as evenly as possible. Topologies
    /// with known locality structure may override it to align shard
    /// boundaries with the fabric (e.g. whole torus rows) and cut
    /// fewer links; any valid partition produces byte-identical
    /// results, so the hint only affects cross-shard traffic volume.
    /// Malformed hints are sanitized by `cr_sim::shard::Plan`, never
    /// trusted.
    fn partition_hint(&self, shards: usize) -> Vec<u32> {
        cr_sim::shard::even_bounds(self.num_nodes(), shards)
    }

    /// Enumerates every unidirectional channel.
    fn links(&self) -> Vec<LinkDesc> {
        let mut out = Vec::with_capacity(self.num_links());
        for i in 0..self.num_nodes() {
            let node = NodeId::new(i as u32);
            for p in 0..self.num_ports(node) {
                let port = PortId::new(p as u16);
                if let (Some(dst), Some(dst_port), Some(id)) = (
                    self.neighbor(node, port),
                    self.arrival_port(node, port),
                    self.link(node, port),
                ) {
                    out.push(LinkDesc {
                        id,
                        src: node,
                        src_port: port,
                        dst,
                        dst_port,
                    });
                }
            }
        }
        out
    }

    /// A short human-readable description, e.g. `"8-ary 2-cube torus"`.
    fn label(&self) -> String;

    /// Clones this topology behind a fresh `Box` (the standard
    /// object-safe clone idiom; implement as
    /// `Box::new(self.clone())`).
    fn clone_box(&self) -> Box<dyn Topology>;
}

impl Clone for Box<dyn Topology> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KAryNCube;

    #[test]
    fn links_enumeration_is_dense_and_consistent() {
        let t = KAryNCube::torus(4, 2);
        let links = t.links();
        assert_eq!(links.len(), t.num_links());
        let mut seen = std::collections::HashSet::new();
        for l in &links {
            assert!(seen.insert(l.id), "duplicate link id {:?}", l.id);
            // The reverse lookup agrees.
            assert_eq!(t.neighbor(l.src, l.src_port), Some(l.dst));
            assert_eq!(t.arrival_port(l.src, l.src_port), Some(l.dst_port));
        }
    }

    #[test]
    fn diameter_of_small_torus() {
        let t = KAryNCube::torus(4, 2);
        assert_eq!(t.diameter(), 4); // 2 per dimension with wraparound
        let m = KAryNCube::mesh(4, 2);
        assert_eq!(m.diameter(), 6); // 3 per dimension without
    }
}
