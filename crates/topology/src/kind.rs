//! Serializable topology selection — the config axis that names a
//! generator and its parameters, round-trippable through the in-repo
//! JSON codec.

use crate::{FatTree, FullMesh, Hypercube, KAryNCube, Topology};
use cr_sim::Json;

/// A named, parameterized topology — the value experiments and sweep
/// artifacts carry so a run's fabric can be reconstructed from its
/// JSON output alone.
///
/// `TopologyKind` covers the closed set of *generated* topologies;
/// arbitrary [`crate::GraphTopology`] instances have no compact
/// parameterization and are deliberately outside it.
///
/// # Examples
///
/// ```
/// use cr_topology::TopologyKind;
///
/// let kind = TopologyKind::FatTree { k: 4 };
/// assert_eq!(kind.num_nodes(), 20);
/// let json = kind.to_json();
/// assert_eq!(TopologyKind::from_json(&json), Some(kind));
/// assert_eq!(kind.build().num_links(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// k-ary n-cube with wraparound channels ([`KAryNCube::torus`]).
    Torus {
        /// Nodes per dimension.
        radix: usize,
        /// Number of dimensions.
        dims: usize,
    },
    /// k-ary n-cube without wraparound ([`KAryNCube::mesh`]).
    Mesh {
        /// Nodes per dimension.
        radix: usize,
        /// Number of dimensions.
        dims: usize,
    },
    /// Binary hypercube ([`Hypercube`]).
    Hypercube {
        /// Number of dimensions (`2^dims` nodes).
        dims: usize,
    },
    /// k-ary fat-tree ([`FatTree`]).
    FatTree {
        /// Switch arity (even).
        k: usize,
    },
    /// Complete graph ([`FullMesh`]).
    FullMesh {
        /// Number of nodes.
        nodes: usize,
    },
}

impl TopologyKind {
    /// Instantiates the described topology.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of the generator's range (see
    /// each generator's constructor).
    pub fn build(&self) -> Box<dyn Topology> {
        match *self {
            TopologyKind::Torus { radix, dims } => Box::new(KAryNCube::torus(radix, dims)),
            TopologyKind::Mesh { radix, dims } => Box::new(KAryNCube::mesh(radix, dims)),
            TopologyKind::Hypercube { dims } => Box::new(Hypercube::new(dims)),
            TopologyKind::FatTree { k } => Box::new(FatTree::new(k)),
            TopologyKind::FullMesh { nodes } => Box::new(FullMesh::new(nodes)),
        }
    }

    /// Number of nodes the built topology will have, without building it.
    pub fn num_nodes(&self) -> usize {
        match *self {
            TopologyKind::Torus { radix, dims } | TopologyKind::Mesh { radix, dims } => {
                radix.pow(dims as u32)
            }
            TopologyKind::Hypercube { dims } => 1usize << dims,
            TopologyKind::FatTree { k } => 5 * k * k / 4,
            TopologyKind::FullMesh { nodes } => nodes,
        }
    }

    /// Human-readable label, matching [`Topology::label`] of the built
    /// instance.
    pub fn label(&self) -> String {
        self.build().label()
    }

    /// Serializes to a JSON object, e.g. `{"kind": "torus", "radix": 8,
    /// "dims": 2}`.
    pub fn to_json(&self) -> Json {
        match *self {
            TopologyKind::Torus { radix, dims } => Json::obj([
                ("kind", Json::from("torus")),
                ("radix", Json::from(radix)),
                ("dims", Json::from(dims)),
            ]),
            TopologyKind::Mesh { radix, dims } => Json::obj([
                ("kind", Json::from("mesh")),
                ("radix", Json::from(radix)),
                ("dims", Json::from(dims)),
            ]),
            TopologyKind::Hypercube { dims } => Json::obj([
                ("kind", Json::from("hypercube")),
                ("dims", Json::from(dims)),
            ]),
            TopologyKind::FatTree { k } => Json::obj([
                ("kind", Json::from("fat_tree")),
                ("k", Json::from(k)),
            ]),
            TopologyKind::FullMesh { nodes } => Json::obj([
                ("kind", Json::from("full_mesh")),
                ("nodes", Json::from(nodes)),
            ]),
        }
    }

    /// Parses the object form produced by [`TopologyKind::to_json`];
    /// returns `None` on an unknown kind or missing parameter.
    pub fn from_json(json: &Json) -> Option<TopologyKind> {
        let field = |key: &str| json.get(key).and_then(Json::as_u64).map(|v| v as usize);
        Some(match json.get("kind")?.as_str()? {
            "torus" => TopologyKind::Torus { radix: field("radix")?, dims: field("dims")? },
            "mesh" => TopologyKind::Mesh { radix: field("radix")?, dims: field("dims")? },
            "hypercube" => TopologyKind::Hypercube { dims: field("dims")? },
            "fat_tree" => TopologyKind::FatTree { k: field("k")? },
            "full_mesh" => TopologyKind::FullMesh { nodes: field("nodes")? },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ZOO: [TopologyKind; 5] = [
        TopologyKind::Torus { radix: 4, dims: 2 },
        TopologyKind::Mesh { radix: 3, dims: 3 },
        TopologyKind::Hypercube { dims: 4 },
        TopologyKind::FatTree { k: 4 },
        TopologyKind::FullMesh { nodes: 16 },
    ];

    #[test]
    fn json_round_trip() {
        for kind in ZOO {
            let json = kind.to_json();
            assert_eq!(TopologyKind::from_json(&json), Some(kind), "{kind:?}");
            // Survives a text round-trip through the parser too.
            let reparsed = Json::parse(&json.to_string()).unwrap();
            assert_eq!(TopologyKind::from_json(&reparsed), Some(kind), "{kind:?}");
        }
    }

    #[test]
    fn num_nodes_matches_built_instance() {
        for kind in ZOO {
            assert_eq!(kind.num_nodes(), kind.build().num_nodes(), "{kind:?}");
            assert_eq!(kind.label(), kind.build().label(), "{kind:?}");
        }
    }

    #[test]
    fn bad_json_rejected() {
        assert_eq!(TopologyKind::from_json(&Json::from("torus")), None);
        assert_eq!(
            TopologyKind::from_json(&Json::obj([("kind", Json::from("ring"))])),
            None
        );
        assert_eq!(
            TopologyKind::from_json(&Json::obj([("kind", Json::from("torus"))])),
            None,
            "missing radix/dims"
        );
    }
}
