//! k-ary fat-tree (folded Clos) topology — the canonical commodity
//! datacenter fabric, after Al-Fares et al., SIGCOMM'08.

use crate::topology::Topology;
use cr_sim::{LinkId, NodeId, PortId};

/// Which layer of the fat-tree a switch sits in.
///
/// Minimal paths in a fat-tree are *up\*/down\** paths over these
/// levels: up from an edge switch through aggregation toward the core,
/// then back down — the level of a node is the metadata routing layers
/// use to reason about path shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FatTreeLevel {
    /// Bottom layer: the pod's leaf switches.
    Edge,
    /// Middle layer: pod-local aggregation switches.
    Aggregation,
    /// Top layer: the pod-spanning core switches.
    Core,
}

/// A k-ary fat-tree of switches: `k` pods of `k/2` edge and `k/2`
/// aggregation switches each, plus `(k/2)^2` core switches —
/// `5k^2/4` nodes and `k^3` unidirectional channels in total.
///
/// The Al-Fares construction: every edge switch connects to every
/// aggregation switch in its pod; aggregation switch `a` of each pod
/// connects to the `k/2` core switches of *core group* `a`; core group
/// `a` therefore reaches every pod through that pod's aggregation
/// switch `a`. (Host-facing edge ports are not modeled — in this
/// simulator every switch carries its own injection/ejection
/// interface, the node = router + processing-element convention used
/// by all other topologies.)
///
/// # Node numbering
///
/// Edge switches first (`pod * k/2 + position`), then aggregation
/// switches, then core switches (`group * k/2 + member`).
///
/// # Port numbering
///
/// * Edge switch: ports `0..k/2` go up to the pod's aggregation
///   switches in index order.
/// * Aggregation switch `a`: ports `0..k/2` go down to the pod's edge
///   switches, ports `k/2..k` go up to core group `a`.
/// * Core switch: port `p` goes down to pod `p`'s aggregation switch
///   of this core's group.
///
/// # Examples
///
/// ```
/// use cr_topology::{FatTree, FatTreeLevel, Topology};
///
/// let t = FatTree::new(4);
/// assert_eq!(t.num_nodes(), 20);      // 16 pod switches + 4 core
/// assert_eq!(t.num_links(), 64);      // k^3
/// assert_eq!(t.diameter(), 4);        // edge -> agg -> core -> agg -> edge
/// assert_eq!(t.level(t.edge(0, 0)), FatTreeLevel::Edge);
/// // Same-pod edge switches are 2 hops apart, cross-pod 4:
/// assert_eq!(t.distance(t.edge(0, 0), t.edge(0, 1)), 2);
/// assert_eq!(t.distance(t.edge(0, 0), t.edge(3, 1)), 4);
/// // Cross-pod traffic can climb through *any* of the k/2 up-ports:
/// assert_eq!(t.minimal_ports(t.edge(0, 0), t.edge(3, 1)).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FatTree {
    k: usize,
}

/// Where a node sits: its level plus pod/group coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Place {
    /// Edge switch `pos` of pod `pod`.
    Edge { pod: usize, pos: usize },
    /// Aggregation switch `pos` of pod `pod`.
    Agg { pod: usize, pos: usize },
    /// Core switch `member` of core group `group`.
    Core { group: usize, member: usize },
}

impl FatTree {
    /// Creates a `k`-ary fat-tree.
    ///
    /// # Panics
    ///
    /// Panics unless `k` is even and in `2..=64` (a 64-ary fat-tree is
    /// already 5 120 switches — beyond that lies no simulation we can
    /// afford).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2 && k <= 64, "k {k} out of range 2..=64");
        assert!(k % 2 == 0, "fat-tree arity k must be even, got {k}");
        FatTree { k }
    }

    /// The arity `k` (ports per switch; also the number of pods).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Switches per layer per pod (`k/2`).
    fn half(&self) -> usize {
        self.k / 2
    }

    /// Number of edge switches (= number of aggregation switches).
    fn num_edge(&self) -> usize {
        self.k * self.half()
    }

    /// The edge switch at `pos` within `pod`.
    ///
    /// # Panics
    ///
    /// Panics if `pod >= k` or `pos >= k/2`.
    pub fn edge(&self, pod: usize, pos: usize) -> NodeId {
        assert!(pod < self.k && pos < self.half(), "edge ({pod},{pos}) out of range");
        NodeId::new((pod * self.half() + pos) as u32)
    }

    /// The aggregation switch at `pos` within `pod`.
    ///
    /// # Panics
    ///
    /// Panics if `pod >= k` or `pos >= k/2`.
    pub fn aggregation(&self, pod: usize, pos: usize) -> NodeId {
        assert!(pod < self.k && pos < self.half(), "agg ({pod},{pos}) out of range");
        NodeId::new((self.num_edge() + pod * self.half() + pos) as u32)
    }

    /// Core switch `member` of core `group` (groups are indexed by the
    /// aggregation position they connect to).
    ///
    /// # Panics
    ///
    /// Panics if `group >= k/2` or `member >= k/2`.
    pub fn core(&self, group: usize, member: usize) -> NodeId {
        assert!(
            group < self.half() && member < self.half(),
            "core ({group},{member}) out of range"
        );
        NodeId::new((2 * self.num_edge() + group * self.half() + member) as u32)
    }

    /// The layer `node` sits in.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn level(&self, node: NodeId) -> FatTreeLevel {
        match self.place(node) {
            Place::Edge { .. } => FatTreeLevel::Edge,
            Place::Agg { .. } => FatTreeLevel::Aggregation,
            Place::Core { .. } => FatTreeLevel::Core,
        }
    }

    /// The pod `node` belongs to, or `None` for core switches (which
    /// span all pods).
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn pod(&self, node: NodeId) -> Option<usize> {
        match self.place(node) {
            Place::Edge { pod, .. } | Place::Agg { pod, .. } => Some(pod),
            Place::Core { .. } => None,
        }
    }

    fn place(&self, node: NodeId) -> Place {
        let i = node.index();
        let e = self.num_edge();
        assert!(i < self.num_nodes(), "node {i} out of range");
        if i < e {
            Place::Edge { pod: i / self.half(), pos: i % self.half() }
        } else if i < 2 * e {
            let j = i - e;
            Place::Agg { pod: j / self.half(), pos: j % self.half() }
        } else {
            let j = i - 2 * e;
            Place::Core { group: j / self.half(), member: j % self.half() }
        }
    }
}

impl Topology for FatTree {
    fn num_nodes(&self) -> usize {
        // k^2 pod switches plus (k/2)^2 core switches = 5k^2/4.
        2 * self.num_edge() + self.half() * self.half()
    }

    fn num_ports(&self, node: NodeId) -> usize {
        match self.place(node) {
            Place::Edge { .. } => self.half(),
            Place::Agg { .. } | Place::Core { .. } => self.k,
        }
    }

    fn neighbor(&self, node: NodeId, port: PortId) -> Option<NodeId> {
        if node.index() >= self.num_nodes() || port.index() >= self.num_ports(node) {
            return None;
        }
        let p = port.index();
        Some(match self.place(node) {
            Place::Edge { pod, .. } => self.aggregation(pod, p),
            Place::Agg { pod, pos } => {
                if p < self.half() {
                    self.edge(pod, p)
                } else {
                    self.core(pos, p - self.half())
                }
            }
            Place::Core { group, .. } => self.aggregation(p, group),
        })
    }

    fn arrival_port(&self, node: NodeId, port: PortId) -> Option<PortId> {
        self.neighbor(node, port)?;
        let p = port.index();
        Some(PortId::new(match self.place(node) {
            // edge(pod, pos) --port a--> agg(pod, a): lands on the
            // aggregation switch's down-port `pos`.
            Place::Edge { pos, .. } => pos as u16,
            Place::Agg { pod, pos } => {
                if p < self.half() {
                    // down to edge(pod, p): lands on its up-port `pos`.
                    pos as u16
                } else {
                    // up to core(pos, p - k/2): lands on its port `pod`.
                    let _ = pod;
                    pod as u16
                }
            }
            // core(group, member) --port pod--> agg(pod, group): lands
            // on the aggregation switch's up-port for `member`.
            Place::Core { member, .. } => (self.half() + member) as u16,
        }))
    }

    fn link(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        self.neighbor(node, port)?;
        let i = node.index();
        let e = self.num_edge();
        // Edge switches have k/2 ports, everything above has k; the
        // dense id is a per-level base plus the node's port offset.
        let base = if i < e {
            i * self.half()
        } else {
            e * self.half() + (i - e) * self.k
        };
        Some(LinkId::new((base + port.index()) as u32))
    }

    fn num_links(&self) -> usize {
        // k/2 per edge switch, k per aggregation and core switch: k^3.
        self.k * self.k * self.k
    }

    fn distance(&self, src: NodeId, dst: NodeId) -> usize {
        if src == dst {
            return 0;
        }
        use self::Place::*;
        // Every path alternates levels, so distances follow from which
        // neighbors (if any) the endpoints share; the cases below are
        // exhaustively cross-checked against BFS in the test suite.
        match (self.place(src), self.place(dst)) {
            (Edge { pod: p, .. }, Edge { pod: q, .. }) => {
                if p == q { 2 } else { 4 }
            }
            (Edge { pod: p, .. }, Agg { pod: q, .. })
            | (Agg { pod: q, .. }, Edge { pod: p, .. }) => {
                if p == q { 1 } else { 3 }
            }
            // Any core is two hops from any edge switch: climb to the
            // pod's aggregation switch of the core's group.
            (Edge { .. }, Core { .. }) | (Core { .. }, Edge { .. }) => 2,
            (Agg { pod: p, pos: a }, Agg { pod: q, pos: b }) => {
                // Same pod: via any shared edge switch. Different pods:
                // only same-position switches share a core group.
                if p == q || a == b { 2 } else { 4 }
            }
            (Agg { pos: a, .. }, Core { group: g, .. })
            | (Core { group: g, .. }, Agg { pos: a, .. }) => {
                if a == g { 1 } else { 3 }
            }
            (Core { group: g, .. }, Core { group: h, .. }) => {
                if g == h { 2 } else { 4 }
            }
        }
    }

    fn minimal_ports_into(&self, node: NodeId, dst: NodeId, out: &mut Vec<PortId>) {
        if node == dst {
            return;
        }
        let d = self.distance(node, dst);
        for p in 0..self.num_ports(node) {
            let port = PortId::new(p as u16);
            if let Some(n) = self.neighbor(node, port) {
                if self.distance(n, dst) + 1 == d {
                    out.push(port);
                }
            }
        }
    }

    fn supports_dimension_order(&self) -> bool {
        false
    }

    fn diameter(&self) -> usize {
        // Worst case is always a cross-pod down-level pair:
        // edge -> agg -> core -> agg -> edge.
        4
    }

    fn label(&self) -> String {
        format!("{}-ary fat-tree", self.k)
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// BFS distances over the generated adjacency — ground truth for
    /// the analytic `distance`.
    fn bfs_dist(t: &FatTree, src: NodeId) -> Vec<usize> {
        let n = t.num_nodes();
        let mut dist = vec![usize::MAX; n];
        dist[src.index()] = 0;
        let mut q = std::collections::VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for p in 0..t.num_ports(u) {
                let v = t.neighbor(u, PortId::new(p as u16)).unwrap();
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }

    #[test]
    fn analytic_distance_matches_bfs() {
        for k in [2, 4, 6, 8] {
            let t = FatTree::new(k);
            for s in 0..t.num_nodes() {
                let src = NodeId::new(s as u32);
                let dist = bfs_dist(&t, src);
                for d in 0..t.num_nodes() {
                    assert_eq!(
                        t.distance(src, NodeId::new(d as u32)),
                        dist[d],
                        "k={k} {s}->{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn counts_match_the_construction() {
        for k in [2usize, 4, 8, 16] {
            let t = FatTree::new(k);
            assert_eq!(t.num_nodes(), 5 * k * k / 4, "k={k}");
            assert_eq!(t.num_links(), k * k * k, "k={k}");
            assert_eq!(t.links().len(), t.num_links(), "k={k}");
        }
    }

    #[test]
    fn links_pair_up_bidirectionally() {
        let t = FatTree::new(4);
        for l in t.links() {
            // The reverse channel exists and points back.
            assert_eq!(t.neighbor(l.dst, l.dst_port), Some(l.src), "reverse of {l:?}");
            assert_eq!(t.arrival_port(l.dst, l.dst_port), Some(l.src_port));
        }
    }

    #[test]
    fn core_switches_span_pods() {
        let t = FatTree::new(4);
        let c = t.core(1, 0);
        let mut pods = Vec::new();
        for p in 0..t.num_ports(c) {
            let agg = t.neighbor(c, PortId::new(p as u16)).unwrap();
            assert_eq!(t.level(agg), FatTreeLevel::Aggregation);
            pods.push(t.pod(agg).unwrap());
        }
        assert_eq!(pods, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cross_pod_traffic_sees_all_up_ports() {
        let t = FatTree::new(8);
        let src = t.edge(0, 0);
        let dst = t.edge(5, 3);
        let ports = t.minimal_ports(src, dst);
        assert_eq!(ports.len(), 4, "all k/2 up-ports are minimal");
        for p in ports {
            let agg = t.neighbor(src, p).unwrap();
            assert_eq!(t.pod(agg), Some(0));
        }
    }

    #[test]
    fn levels_and_pods() {
        let t = FatTree::new(4);
        assert_eq!(t.level(t.edge(2, 1)), FatTreeLevel::Edge);
        assert_eq!(t.level(t.aggregation(2, 1)), FatTreeLevel::Aggregation);
        assert_eq!(t.level(t.core(1, 1)), FatTreeLevel::Core);
        assert_eq!(t.pod(t.edge(2, 1)), Some(2));
        assert_eq!(t.pod(t.aggregation(3, 0)), Some(3));
        assert_eq!(t.pod(t.core(0, 0)), None);
        assert_eq!(t.label(), "4-ary fat-tree");
    }

    #[test]
    #[should_panic]
    fn odd_arity_rejected() {
        let _ = FatTree::new(5);
    }

    #[test]
    #[should_panic]
    fn oversized_arity_rejected() {
        let _ = FatTree::new(66);
    }
}
