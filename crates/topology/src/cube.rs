//! k-ary n-cube meshes and tori — the paper's evaluation topologies.

use crate::topology::Topology;
use cr_sim::{LinkId, NodeId, PortId};

/// A k-ary n-cube: `dims` dimensions of radix `radix`, with or without
/// wraparound channels.
///
/// With wraparound this is a **torus** (the paper's main topology); the
/// torus channel-dependency cycle is exactly why dimension-order routing
/// needs two virtual channels there while Compressionless Routing needs
/// none. Without wraparound it is a **mesh**.
///
/// Node `i` has coordinates obtained by writing `i` in base `radix`,
/// least-significant digit = dimension 0. Dimension `d` uses output port
/// `2d` toward increasing coordinate and `2d + 1` toward decreasing
/// coordinate.
///
/// # Examples
///
/// ```
/// use cr_topology::{KAryNCube, Topology};
///
/// let t = KAryNCube::torus(8, 2);
/// assert_eq!(t.num_nodes(), 64);
/// assert_eq!(t.num_links(), 64 * 4);
///
/// let m = KAryNCube::mesh(4, 3);
/// assert_eq!(m.num_nodes(), 64);
/// assert_eq!(m.label(), "4-ary 3-cube mesh");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KAryNCube {
    radix: usize,
    dims: usize,
    wrap: bool,
}

impl KAryNCube {
    /// Creates a torus (wraparound channels present).
    ///
    /// # Panics
    ///
    /// Panics if `radix < 2` or `dims == 0`.
    pub fn torus(radix: usize, dims: usize) -> Self {
        Self::new(radix, dims, true)
    }

    /// Creates a mesh (no wraparound channels).
    ///
    /// # Panics
    ///
    /// Panics if `radix < 2` or `dims == 0`.
    pub fn mesh(radix: usize, dims: usize) -> Self {
        Self::new(radix, dims, false)
    }

    fn new(radix: usize, dims: usize, wrap: bool) -> Self {
        assert!(radix >= 2, "radix must be at least 2, got {radix}");
        assert!(dims >= 1, "dims must be at least 1, got {dims}");
        // checked_pow so an absurd shape fails loudly instead of
        // wrapping in release builds before the size check fires.
        let nodes = u32::try_from(dims)
            .ok()
            .and_then(|d| radix.checked_pow(d))
            .filter(|&n| n <= u32::MAX as usize);
        assert!(
            nodes.is_some(),
            "{radix}-ary {dims}-cube exceeds the u32 node-id space"
        );
        KAryNCube { radix, dims, wrap }
    }

    /// The radix `k` (nodes per dimension).
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// The number of dimensions `n`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Returns `true` for a torus, `false` for a mesh.
    pub fn is_torus(&self) -> bool {
        self.wrap
    }

    /// Coordinate of `node` in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= self.dims()` or the node is out of range.
    pub fn coord(&self, node: NodeId, dim: usize) -> usize {
        assert!(dim < self.dims, "dimension {dim} out of range");
        assert!(node.index() < self.num_nodes(), "node out of range");
        (node.index() / self.radix.pow(dim as u32)) % self.radix
    }

    /// The node at the given coordinates (one per dimension).
    ///
    /// # Panics
    ///
    /// Panics if the number of coordinates differs from
    /// [`KAryNCube::dims`] or any coordinate is `>= radix`.
    pub fn node_at(&self, coords: &[usize]) -> NodeId {
        assert_eq!(coords.len(), self.dims, "wrong coordinate count");
        let mut idx = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < self.radix, "coordinate {c} out of range");
            idx += c * self.radix.pow(d as u32);
        }
        NodeId::new(idx as u32)
    }

    /// Signed minimal offset from coordinate `from` to `to` in one
    /// dimension: positive means travel in the `+` direction.
    ///
    /// On a torus, ties (`|offset| == radix/2` with even radix) resolve
    /// to the positive direction; minimal-adaptive routing treats both
    /// directions as minimal in that case via
    /// [`Topology::minimal_ports_into`].
    fn offset(&self, from: usize, to: usize) -> isize {
        let k = self.radix as isize;
        let d = to as isize - from as isize;
        if !self.wrap {
            return d;
        }
        // Wrap into (-k/2, k/2].
        let mut d = d % k;
        if d > k / 2 {
            d -= k;
        } else if d < -(k - 1) / 2 {
            d += k;
        }
        d
    }

    /// Both directions minimal in `dim` (torus with even radix and
    /// exactly k/2 apart)?
    fn tie(&self, from: usize, to: usize) -> bool {
        self.wrap && self.radix.is_multiple_of(2) && {
            let k = self.radix;
            (to + k - from) % k == k / 2
        }
    }

    fn port_dir(port: PortId) -> (usize, bool) {
        // (dimension, positive?)
        (port.index() / 2, port.index().is_multiple_of(2))
    }
}

impl Topology for KAryNCube {
    fn num_nodes(&self) -> usize {
        self.radix.pow(self.dims as u32)
    }

    fn num_ports(&self, node: NodeId) -> usize {
        assert!(node.index() < self.num_nodes(), "node out of range");
        2 * self.dims
    }

    fn neighbor(&self, node: NodeId, port: PortId) -> Option<NodeId> {
        if port.index() >= 2 * self.dims || node.index() >= self.num_nodes() {
            return None;
        }
        let (dim, plus) = Self::port_dir(port);
        let c = self.coord(node, dim);
        let k = self.radix;
        let nc = if plus {
            if c + 1 == k {
                if self.wrap {
                    0
                } else {
                    return None;
                }
            } else {
                c + 1
            }
        } else if c == 0 {
            if self.wrap {
                k - 1
            } else {
                return None;
            }
        } else {
            c - 1
        };
        let stride = k.pow(dim as u32);
        let base = node.index() - c * stride;
        Some(NodeId::new((base + nc * stride) as u32))
    }

    fn arrival_port(&self, node: NodeId, port: PortId) -> Option<PortId> {
        self.neighbor(node, port)?;
        let (dim, plus) = Self::port_dir(port);
        // A flit moving in the + direction arrives on the neighbor's
        // input port facing the - direction, and vice versa. Input port
        // numbering mirrors output numbering, so arrival port is the
        // opposite-direction port of the same dimension.
        Some(PortId::new((2 * dim + usize::from(plus)) as u16))
    }

    fn link(&self, node: NodeId, port: PortId) -> Option<LinkId> {
        self.neighbor(node, port)?;
        Some(LinkId::new(
            (node.index() * 2 * self.dims + port.index()) as u32,
        ))
    }

    fn num_links(&self) -> usize {
        if self.wrap {
            self.num_nodes() * 2 * self.dims
        } else {
            // Each dimension has (k-1) bidirectional links per line,
            // and num_nodes()/k lines per dimension.
            2 * self.dims * (self.radix - 1) * (self.num_nodes() / self.radix)
        }
    }

    fn distance(&self, src: NodeId, dst: NodeId) -> usize {
        (0..self.dims)
            .map(|d| self.offset(self.coord(src, d), self.coord(dst, d)).unsigned_abs())
            .sum()
    }

    fn minimal_ports_into(&self, node: NodeId, dst: NodeId, out: &mut Vec<PortId>) {
        for d in 0..self.dims {
            let from = self.coord(node, d);
            let to = self.coord(dst, d);
            if from == to {
                continue;
            }
            let off = self.offset(from, to);
            if off > 0 || self.tie(from, to) {
                out.push(PortId::new((2 * d) as u16));
            }
            if off < 0 || self.tie(from, to) {
                out.push(PortId::new((2 * d + 1) as u16));
            }
        }
    }

    fn is_wraparound(&self, node: NodeId, port: PortId) -> bool {
        if !self.wrap || port.index() >= 2 * self.dims {
            return false;
        }
        let (dim, plus) = Self::port_dir(port);
        let c = self.coord(node, dim);
        (plus && c == self.radix - 1) || (!plus && c == 0)
    }

    fn diameter(&self) -> usize {
        if self.wrap {
            self.dims * (self.radix / 2)
        } else {
            self.dims * (self.radix - 1)
        }
    }

    /// Shard boundaries snapped to whole rows of the lowest
    /// dimension: node ids increment fastest along dimension 0, so a
    /// boundary at a multiple of `radix` keeps every dim-0 channel
    /// (including its wraparound) inside one shard and only the
    /// higher-dimension channels cross shards.
    fn partition_hint(&self, shards: usize) -> Vec<u32> {
        let row = self.radix as u32;
        let mut bounds = cr_sim::shard::even_bounds(self.num_nodes(), shards);
        let last = bounds.len() - 1;
        for b in &mut bounds[1..last] {
            // Round to the nearest row boundary; `Plan::from_hint`
            // re-establishes monotonicity if rounding collides.
            *b = (*b + row / 2) / row * row;
        }
        bounds
    }

    fn label(&self) -> String {
        format!(
            "{}-ary {}-cube {}",
            self.radix,
            self.dims,
            if self.wrap { "torus" } else { "mesh" }
        )
    }

    fn clone_box(&self) -> Box<dyn Topology> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = KAryNCube::torus(5, 3);
        for i in 0..t.num_nodes() {
            let n = NodeId::new(i as u32);
            let coords: Vec<usize> = (0..3).map(|d| t.coord(n, d)).collect();
            assert_eq!(t.node_at(&coords), n);
        }
    }

    #[test]
    fn mesh_edges_have_no_wraparound_neighbors() {
        let m = KAryNCube::mesh(4, 2);
        let corner = m.node_at(&[0, 0]);
        assert_eq!(m.neighbor(corner, PortId::new(1)), None); // -x
        assert_eq!(m.neighbor(corner, PortId::new(3)), None); // -y
        assert!(m.neighbor(corner, PortId::new(0)).is_some()); // +x
        assert!(m.neighbor(corner, PortId::new(2)).is_some()); // +y
    }

    #[test]
    fn torus_wraps() {
        let t = KAryNCube::torus(4, 2);
        let corner = t.node_at(&[0, 0]);
        assert_eq!(t.neighbor(corner, PortId::new(1)), Some(t.node_at(&[3, 0])));
        assert!(t.is_wraparound(corner, PortId::new(1)));
        assert!(!t.is_wraparound(corner, PortId::new(0)));
    }

    #[test]
    fn torus_distance_uses_short_way_around() {
        let t = KAryNCube::torus(8, 1);
        let a = t.node_at(&[0]);
        let b = t.node_at(&[7]);
        assert_eq!(t.distance(a, b), 1);
        let c = t.node_at(&[4]);
        assert_eq!(t.distance(a, c), 4);
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let m = KAryNCube::mesh(8, 2);
        let a = m.node_at(&[0, 0]);
        let b = m.node_at(&[7, 7]);
        assert_eq!(m.distance(a, b), 14);
    }

    #[test]
    fn tie_case_offers_both_directions() {
        let t = KAryNCube::torus(4, 1);
        let a = t.node_at(&[0]);
        let b = t.node_at(&[2]); // exactly k/2 away
        let ports = t.minimal_ports(a, b);
        assert_eq!(ports, vec![PortId::new(0), PortId::new(1)]);
    }

    #[test]
    fn minimal_ports_sorted_and_distance_reducing() {
        let t = KAryNCube::torus(5, 2);
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                let (a, b) = (NodeId::new(a as u32), NodeId::new(b as u32));
                let ports = t.minimal_ports(a, b);
                if a == b {
                    assert!(ports.is_empty());
                    continue;
                }
                assert!(!ports.is_empty());
                assert!(ports.windows(2).all(|w| w[0] < w[1]), "unsorted");
                for p in ports {
                    let n = t.neighbor(a, p).unwrap();
                    assert_eq!(t.distance(n, b), t.distance(a, b) - 1);
                }
            }
        }
    }

    #[test]
    fn mesh_link_count_matches_enumeration() {
        for (k, n) in [(2, 1), (3, 2), (4, 2), (2, 4)] {
            let m = KAryNCube::mesh(k, n);
            assert_eq!(m.links().len(), m.num_links(), "mesh k={k} n={n}");
            let t = KAryNCube::torus(k, n);
            assert_eq!(t.links().len(), t.num_links(), "torus k={k} n={n}");
        }
    }

    #[test]
    fn arrival_port_is_reverse_direction() {
        let t = KAryNCube::torus(4, 2);
        let links = t.links();
        for l in links {
            // The reverse channel exists and comes back.
            let back = t.neighbor(l.dst, l.dst_port).unwrap();
            assert_eq!(back, l.src, "reverse of {l:?}");
        }
    }

    #[test]
    #[should_panic]
    fn radix_one_rejected() {
        let _ = KAryNCube::torus(1, 2);
    }

    #[test]
    #[should_panic]
    fn overflowing_shape_rejected() {
        // 4096^8 wraps usize arithmetic; must panic, not wrap.
        let _ = KAryNCube::torus(4096, 8);
    }

    /// Spot-checks at the 64x64..256x256 scale the large-topology
    /// benches run at; full O(n^2) invariants are far too slow here,
    /// so exercise the rim and center where the arithmetic can break.
    #[test]
    fn large_tori_are_consistent() {
        for radix in [64usize, 256] {
            let t = KAryNCube::torus(radix, 2);
            assert_eq!(t.num_nodes(), radix * radix);
            assert_eq!(t.num_links(), radix * radix * 4);
            assert_eq!(t.diameter(), radix); // radix/2 per dimension
            let corner = t.node_at(&[0, 0]);
            let far = t.node_at(&[radix / 2, radix / 2]);
            assert_eq!(t.distance(corner, far), radix);
            // Wraparound puts the opposite corner only 2 hops away.
            let opposite = t.node_at(&[radix - 1, radix - 1]);
            assert_eq!(t.distance(corner, opposite), 2);
            assert_eq!(
                t.minimal_ports(corner, opposite),
                vec![PortId::new(1), PortId::new(3)]
            );
            assert!(t.is_wraparound(corner, PortId::new(1)));
            // Link ids stay dense and in range at the top node.
            let last = NodeId::new((t.num_nodes() - 1) as u32);
            let max_link = t.link(last, PortId::new(3)).unwrap();
            assert_eq!(max_link.index(), t.num_links() - 1);
        }
    }

    #[test]
    fn large_mesh_rim_has_no_wraparound() {
        let m = KAryNCube::mesh(256, 2);
        assert_eq!(m.num_links(), 2 * 2 * 255 * 256);
        assert_eq!(m.diameter(), 2 * 255);
        let corner = m.node_at(&[0, 0]);
        assert_eq!(m.neighbor(corner, PortId::new(1)), None);
        assert!(!m.is_wraparound(corner, PortId::new(1)));
        let far = m.node_at(&[255, 255]);
        assert_eq!(m.distance(corner, far), 510);
    }

    #[test]
    #[should_panic]
    fn bad_coord_rejected() {
        let t = KAryNCube::torus(4, 2);
        let _ = t.node_at(&[4, 0]);
    }
}
