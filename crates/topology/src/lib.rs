//! Network topologies for the Compressionless Routing reproduction.
//!
//! The paper's evaluation runs on k-ary n-cube tori and meshes; one of
//! CR's advertised advantages is "applicability to a wide variety of
//! network topologies", so this crate also provides hypercubes and
//! arbitrary (irregular) graphs behind a single [`Topology`] trait.
//!
//! * [`KAryNCube`] — k-ary n-cube **torus** or **mesh** (the paper's
//!   8×8 and 16×16 tori are `KAryNCube::torus(8, 2)` etc.).
//! * [`Hypercube`] — binary n-cube.
//! * [`FatTree`] — k-ary fat-tree (Al-Fares-style pods, aggregation
//!   and core layers).
//! * [`FullMesh`] — complete graph, the fabric of the zero-VC
//!   ordered-detour comparison.
//! * [`GraphTopology`] — any strongly-connected directed graph, with
//!   minimal routes precomputed by breadth-first search.
//!
//! [`TopologyKind`] names the generated shapes as a serializable
//! config axis (JSON round-trip via `cr_sim::Json`).
//!
//! # Examples
//!
//! ```
//! use cr_topology::{KAryNCube, Topology};
//! use cr_sim::NodeId;
//!
//! let torus = KAryNCube::torus(8, 2); // the paper's 8x8 torus
//! assert_eq!(torus.num_nodes(), 64);
//! // Wraparound makes opposite corners only 2+2 hops apart:
//! let a = torus.node_at(&[0, 0]);
//! let b = torus.node_at(&[7, 7]);
//! assert_eq!(torus.distance(a, b), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cube;
mod fattree;
mod fullmesh;
mod graph;
mod hypercube;
mod kind;
mod topology;

pub use cube::KAryNCube;
pub use fattree::{FatTree, FatTreeLevel};
pub use fullmesh::FullMesh;
pub use graph::{GraphError, GraphTopology};
pub use hypercube::Hypercube;
pub use kind::TopologyKind;
pub use topology::{LinkDesc, Topology};
