//! Property-based tests over topology invariants.
//!
//! Every `Topology` implementation must satisfy the same structural
//! laws; these tests check them over randomly drawn shapes and node
//! pairs.

use cr_sim::{NodeId, PortId};
use cr_topology::{GraphTopology, Hypercube, KAryNCube, Topology};
use proptest::prelude::*;

/// Checks the invariants shared by all topologies on one instance.
fn check_invariants(t: &dyn Topology) {
    let n = t.num_nodes();
    assert!(n > 0);

    // Link ids are unique and in range.
    let links = t.links();
    assert_eq!(links.len(), t.num_links());
    let mut seen = std::collections::HashSet::new();
    for l in &links {
        assert!(seen.insert(l.id));
        assert!(l.src.index() < n && l.dst.index() < n);
        // neighbor/arrival agree with the link description.
        assert_eq!(t.neighbor(l.src, l.src_port), Some(l.dst));
        assert_eq!(t.arrival_port(l.src, l.src_port), Some(l.dst_port));
        assert_eq!(t.link(l.src, l.src_port), Some(l.id));
    }

    // No two links arrive on the same input port of the same node.
    let mut inputs = std::collections::HashSet::new();
    for l in &links {
        assert!(
            inputs.insert((l.dst, l.dst_port)),
            "input collision at {:?} {:?}",
            l.dst,
            l.dst_port
        );
    }

    for a in 0..n {
        for b in 0..n {
            let (a, b) = (NodeId::new(a as u32), NodeId::new(b as u32));
            let d = t.distance(a, b);
            if a == b {
                assert_eq!(d, 0);
                assert!(t.minimal_ports(a, b).is_empty());
                continue;
            }
            assert!(d >= 1);
            assert!(d <= t.diameter());
            let ports = t.minimal_ports(a, b);
            assert!(!ports.is_empty(), "no minimal port {a} -> {b}");
            // Ascending and distance-reducing.
            assert!(ports.windows(2).all(|w| w[0] < w[1]));
            for p in ports {
                let next = t.neighbor(a, p).expect("minimal port must be connected");
                assert_eq!(t.distance(next, b) + 1, d);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cube_invariants(radix in 2usize..6, dims in 1usize..4, wrap in any::<bool>()) {
        let t = if wrap {
            KAryNCube::torus(radix, dims)
        } else {
            KAryNCube::mesh(radix, dims)
        };
        check_invariants(&t);
    }

    #[test]
    fn hypercube_invariants(dims in 1usize..6) {
        check_invariants(&Hypercube::new(dims));
    }

    #[test]
    fn random_connected_graph_invariants(n in 3usize..12, extra in 0usize..12, seed in any::<u64>()) {
        // Ring backbone guarantees strong connectivity, plus random chords.
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        for _ in 0..extra {
            let a = next() % n;
            let b = next() % n;
            if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
                edges.push((a, b));
            }
        }
        let g = GraphTopology::from_undirected_edges(n, &edges).unwrap();
        check_invariants(&g);
    }

    #[test]
    fn torus_distance_symmetry(radix in 2usize..8, dims in 1usize..3, a in 0u32..64, b in 0u32..64) {
        let t = KAryNCube::torus(radix, dims);
        let n = t.num_nodes() as u32;
        let (a, b) = (NodeId::new(a % n), NodeId::new(b % n));
        prop_assert_eq!(t.distance(a, b), t.distance(b, a));
    }

    #[test]
    fn torus_distance_triangle_inequality(a in 0u32..64, b in 0u32..64, c in 0u32..64) {
        let t = KAryNCube::torus(8, 2);
        let (a, b, c) = (NodeId::new(a), NodeId::new(b), NodeId::new(c));
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
    }

    #[test]
    fn greedy_walk_reaches_destination(a in 0u32..64, b in 0u32..64) {
        // Following any minimal port repeatedly must arrive in exactly
        // `distance` hops.
        let t = KAryNCube::torus(8, 2);
        let (mut cur, dst) = (NodeId::new(a), NodeId::new(b));
        let d = t.distance(cur, dst);
        for step in 0..d {
            let ports = t.minimal_ports(cur, dst);
            prop_assert!(!ports.is_empty(), "stuck at step {step}");
            // Worst case: always take the last offered port.
            cur = t.neighbor(cur, *ports.last().unwrap()).unwrap();
        }
        prop_assert_eq!(cur, dst);
    }

    #[test]
    fn wraparound_channels_only_on_torus_rim(radix in 2usize..6, dims in 1usize..3) {
        let t = KAryNCube::torus(radix, dims);
        let m = KAryNCube::mesh(radix, dims);
        let mut wrap_count = 0usize;
        for i in 0..t.num_nodes() {
            let node = NodeId::new(i as u32);
            for p in 0..t.num_ports(node) {
                let port = PortId::new(p as u16);
                if t.is_wraparound(node, port) {
                    wrap_count += 1;
                }
                assert!(!m.is_wraparound(node, port));
            }
        }
        // Each dimension contributes 2 wraparound channels per line, and
        // there are num_nodes/radix lines per dimension.
        prop_assert_eq!(wrap_count, dims * 2 * (t.num_nodes() / radix));
    }
}
