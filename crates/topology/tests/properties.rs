//! Property-based tests over topology invariants.
//!
//! Every `Topology` implementation must satisfy the same structural
//! laws; these tests check them over randomly drawn shapes and node
//! pairs.

use cr_sim::check::{check, Config};
use cr_sim::{NodeId, PortId};
use cr_topology::{FatTree, FullMesh, GraphTopology, Hypercube, KAryNCube, Topology};

/// Checks the invariants shared by all topologies on one instance.
fn check_invariants(t: &dyn Topology) {
    let n = t.num_nodes();
    assert!(n > 0);

    // Link ids are unique and in range.
    let links = t.links();
    assert_eq!(links.len(), t.num_links());
    let mut seen = std::collections::HashSet::new();
    for l in &links {
        assert!(seen.insert(l.id));
        assert!(l.src.index() < n && l.dst.index() < n);
        // neighbor/arrival agree with the link description.
        assert_eq!(t.neighbor(l.src, l.src_port), Some(l.dst));
        assert_eq!(t.arrival_port(l.src, l.src_port), Some(l.dst_port));
        assert_eq!(t.link(l.src, l.src_port), Some(l.id));
    }

    // No two links arrive on the same input port of the same node.
    let mut inputs = std::collections::HashSet::new();
    for l in &links {
        assert!(
            inputs.insert((l.dst, l.dst_port)),
            "input collision at {:?} {:?}",
            l.dst,
            l.dst_port
        );
    }

    for a in 0..n {
        for b in 0..n {
            let (a, b) = (NodeId::new(a as u32), NodeId::new(b as u32));
            let d = t.distance(a, b);
            if a == b {
                assert_eq!(d, 0);
                assert!(t.minimal_ports(a, b).is_empty());
                continue;
            }
            assert!(d >= 1);
            assert!(d <= t.diameter());
            let ports = t.minimal_ports(a, b);
            assert!(!ports.is_empty(), "no minimal port {a} -> {b}");
            // Ascending and distance-reducing.
            assert!(ports.windows(2).all(|w| w[0] < w[1]));
            for p in ports {
                let next = t.neighbor(a, p).expect("minimal port must be connected");
                assert_eq!(t.distance(next, b) + 1, d);
            }
        }
    }
}

#[test]
fn cube_invariants() {
    check("cube_invariants", Config::cases(16), |src| {
        let radix = src.usize_in(2..6);
        let dims = src.usize_in(1..4);
        let t = if src.bool_any() {
            KAryNCube::torus(radix, dims)
        } else {
            KAryNCube::mesh(radix, dims)
        };
        check_invariants(&t);
    });
}

#[test]
fn hypercube_invariants() {
    check("hypercube_invariants", Config::cases(16), |src| {
        let dims = src.usize_in(1..6);
        check_invariants(&Hypercube::new(dims));
    });
}

#[test]
fn random_connected_graph_invariants() {
    check("random_connected_graph_invariants", Config::cases(16), |src| {
        let n = src.usize_in(3..12);
        let extra = src.usize_in(0..12);
        let seed = src.u64_any();
        // Ring backbone guarantees strong connectivity, plus random chords.
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        for _ in 0..extra {
            let a = next() % n;
            let b = next() % n;
            if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
                edges.push((a, b));
            }
        }
        let g = GraphTopology::from_undirected_edges(n, &edges).unwrap();
        check_invariants(&g);
    });
}

#[test]
fn fat_tree_invariants() {
    check("fat_tree_invariants", Config::cases(4), |src| {
        let k = 2 * src.usize_in(1..5); // k in {2, 4, 6, 8}
        check_invariants(&FatTree::new(k));
    });
}

#[test]
fn fat_tree_counts_and_bidirectional_links() {
    check("fat_tree_counts_and_bidirectional_links", Config::cases(8), |src| {
        let k = 2 * src.usize_in(1..7); // k in {2, ..., 12}
        let t = FatTree::new(k);
        assert_eq!(t.num_nodes(), 5 * k * k / 4);
        assert_eq!(t.num_links(), k * k * k);
        let links = t.links();
        assert_eq!(links.len(), t.num_links());
        // Every channel has a reverse channel through the same pair of
        // ports (bidirectional pairing).
        for l in &links {
            assert_eq!(t.neighbor(l.dst, l.dst_port), Some(l.src), "reverse of {l:?}");
            assert_eq!(t.arrival_port(l.dst, l.dst_port), Some(l.src_port));
        }
    });
}

#[test]
fn fat_tree_strong_connectivity_by_bfs() {
    // `check_invariants` proves finite distances; this proves actual
    // reachability by walking the links of a mid-size instance.
    let t = FatTree::new(6);
    let n = t.num_nodes();
    let mut seen = vec![false; n];
    let mut q = std::collections::VecDeque::from([NodeId::new(0)]);
    seen[0] = true;
    let mut count = 1;
    while let Some(u) = q.pop_front() {
        for p in 0..t.num_ports(u) {
            let v = t.neighbor(u, PortId::new(p as u16)).unwrap();
            if !seen[v.index()] {
                seen[v.index()] = true;
                count += 1;
                q.push_back(v);
            }
        }
    }
    assert_eq!(count, n, "fat-tree not strongly connected");
}

#[test]
fn full_mesh_invariants() {
    check("full_mesh_invariants", Config::cases(8), |src| {
        let n = src.usize_in(2..24);
        check_invariants(&FullMesh::new(n));
    });
}

#[test]
fn full_mesh_counts_and_distance_symmetry() {
    check("full_mesh_counts_and_distance_symmetry", Config::cases(16), |src| {
        let n = src.usize_in(2..64);
        let t = FullMesh::new(n);
        assert_eq!(t.num_nodes(), n);
        assert_eq!(t.num_links(), n * (n - 1));
        assert_eq!(t.diameter(), 1);
        let a = NodeId::new(src.u32_in(0..4096) % n as u32);
        let b = NodeId::new(src.u32_in(0..4096) % n as u32);
        assert_eq!(t.distance(a, b), t.distance(b, a));
        assert_eq!(t.distance(a, b), usize::from(a != b));
    });
}

#[test]
fn torus_distance_symmetry() {
    check("torus_distance_symmetry", Config::cases(16), |src| {
        let radix = src.usize_in(2..8);
        let dims = src.usize_in(1..3);
        let t = KAryNCube::torus(radix, dims);
        let n = t.num_nodes() as u32;
        let a = NodeId::new(src.u32_in(0..64) % n);
        let b = NodeId::new(src.u32_in(0..64) % n);
        assert_eq!(t.distance(a, b), t.distance(b, a));
    });
}

#[test]
fn torus_distance_triangle_inequality() {
    check("torus_distance_triangle_inequality", Config::cases(16), |src| {
        let t = KAryNCube::torus(8, 2);
        let a = NodeId::new(src.u32_in(0..64));
        let b = NodeId::new(src.u32_in(0..64));
        let c = NodeId::new(src.u32_in(0..64));
        assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
    });
}

#[test]
fn greedy_walk_reaches_destination() {
    check("greedy_walk_reaches_destination", Config::cases(16), |src| {
        // Following any minimal port repeatedly must arrive in exactly
        // `distance` hops.
        let t = KAryNCube::torus(8, 2);
        let mut cur = NodeId::new(src.u32_in(0..64));
        let dst = NodeId::new(src.u32_in(0..64));
        let d = t.distance(cur, dst);
        for step in 0..d {
            let ports = t.minimal_ports(cur, dst);
            assert!(!ports.is_empty(), "stuck at step {step}");
            // Worst case: always take the last offered port.
            cur = t.neighbor(cur, *ports.last().unwrap()).unwrap();
        }
        assert_eq!(cur, dst);
    });
}

#[test]
fn wraparound_channels_only_on_torus_rim() {
    check("wraparound_channels_only_on_torus_rim", Config::cases(16), |src| {
        let radix = src.usize_in(2..6);
        let dims = src.usize_in(1..3);
        let t = KAryNCube::torus(radix, dims);
        let m = KAryNCube::mesh(radix, dims);
        let mut wrap_count = 0usize;
        for i in 0..t.num_nodes() {
            let node = NodeId::new(i as u32);
            for p in 0..t.num_ports(node) {
                let port = PortId::new(p as u16);
                if t.is_wraparound(node, port) {
                    wrap_count += 1;
                }
                assert!(!m.is_wraparound(node, port));
            }
        }
        // Each dimension contributes 2 wraparound channels per line, and
        // there are num_nodes/radix lines per dimension.
        assert_eq!(wrap_count, dims * 2 * (t.num_nodes() / radix));
    });
}
