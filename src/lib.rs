//! # Compressionless Routing
//!
//! A complete, cycle-accurate reproduction of **"Compressionless
//! Routing: A Framework for Adaptive and Fault-tolerant Routing"**
//! (Kim, Liu & Chien, ISCA 1994 / IEEE TPDS), including the wormhole
//! network simulator it needs as a substrate, the dimension-order and
//! Duato baselines it compares against, and a harness regenerating
//! every table and figure of its evaluation.
//!
//! This crate is a facade: it re-exports the workspace's crates under
//! one roof. Start with [`core`] (the CR/FCR protocol and the
//! [`core::NetworkBuilder`] entry point), then explore:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`core`] | `cr-core` | CR/FCR protocol engines, the network simulation, [`core::NetworkBuilder`] |
//! | [`router`] | `cr-router` | Wormhole router microarchitecture and routing algorithms |
//! | [`topology`] | `cr-topology` | Tori, meshes, hypercubes, arbitrary graphs |
//! | [`traffic`] | `cr-traffic` | Synthetic workloads |
//! | [`faults`] | `cr-faults` | Transient and permanent fault models |
//! | [`metrics`] | `cr-metrics` | Statistics plumbing |
//! | [`sim`] | `cr-sim` | Identifiers, cycles, RNG, FIFOs |
//! | [`experiments`] | `cr-experiments` | Per-figure experiment runners |
//!
//! # Quick start
//!
//! ```
//! use compressionless_routing::prelude::*;
//!
//! // The paper's network: an 8x8 torus, minimal fully-adaptive
//! // routing with zero virtual channels, made deadlock-free by CR.
//! let mut net = NetworkBuilder::new(KAryNCube::torus(8, 2))
//!     .routing(RoutingKind::Adaptive { vcs: 1 })
//!     .protocol(ProtocolKind::Cr)
//!     .traffic(TrafficPattern::Uniform, LengthDistribution::Fixed(16), 0.2)
//!     .seed(42)
//!     .build();
//!
//! let report = net.run(10_000);
//! assert!(!report.deadlocked);
//! assert_eq!(report.counters.corrupt_payload_delivered, 0);
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cr_core as core;
pub use cr_experiments as experiments;
pub use cr_faults as faults;
pub use cr_metrics as metrics;
pub use cr_router as router;
pub use cr_sim as sim;
pub use cr_topology as topology;
pub use cr_traffic as traffic;

/// The most common imports, bundled.
///
/// ```
/// use compressionless_routing::prelude::*;
/// let _builder = NetworkBuilder::new(KAryNCube::torus(4, 2));
/// ```
pub mod prelude {
    pub use cr_core::{
        Network, NetworkBuilder, ProtocolKind, RetransmitScheme, RoutingKind, SimReport,
    };
    pub use cr_faults::FaultModel;
    pub use cr_sim::{Cycle, MessageId, NodeId, Rng, SimRng};
    pub use cr_topology::{GraphTopology, Hypercube, KAryNCube, Topology};
    pub use cr_traffic::{LengthDistribution, TrafficPattern};
}
